// Command nwcserve serves NWC queries over HTTP — the location-based
// service of the paper's motivating scenario.
//
//	nwcgen -dataset ca > ca.csv
//	nwcserve -data ca.csv -addr :8080 -slowlog 100ms
//	nwcserve -data ca.csv -index ca.nwc        # paged, WAL-protected
//	nwcserve -index ca.nwc                     # reopen (crash recovery)
//	nwcserve -data ca.csv -shards 4 -parallelism 4 -result-cache 1024
//	nwcserve -follow http://leader:8080 -index replica.nwc -addr :8081
//
//	curl 'localhost:8080/nwc?x=5000&y=5000&l=50&w=50&n=8'
//	curl 'localhost:8080/nwc?x=5000&y=5000&l=50&w=50&n=8&explain=1'
//	curl 'localhost:8080/knwc?x=5000&y=5000&l=50&w=50&n=8&k=3&m=1'
//	curl 'localhost:8080/stats'
//	curl 'localhost:8080/metrics?format=prometheus'
//	curl -N 'localhost:8080/subscribe?x=5000&y=5000&l=50&w=50&n=8'
//	curl 'localhost:8080/debug/slowlog'
//	curl 'localhost:8080/readyz'
//	go tool pprof 'localhost:8080/debug/pprof/profile?seconds=10'
//
// The listener comes up before the backend opens: /healthz answers 200
// immediately, while /readyz (and every query endpoint) answers 503
// until the index is built or reopened — including any WAL replay — so
// orchestrators and cmd/nwcload can gate on readiness without racing
// crash recovery.
//
// With -index the tree lives on disk and POST /insert and /delete are
// crash-safe: each mutation is written ahead to <index>.wal/ before it
// is acknowledged (tune with -wal-sync and -wal-sync-interval), and
// reopening after a crash replays the log. SIGINT/SIGTERM shut the
// server down gracefully: in-flight requests get -shutdown-timeout to
// finish, then the index is checkpointed and closed so the next start
// needs no recovery.
//
// Every request is logged through log/slog (text by default, JSON with
// -log-format json); -query-log-sample N additionally emits one
// structured wide-event record per N sampled NWC/kNWC requests (cache
// outcome, engine phases, shard fan-out and the router's
// scatter/border/merge split); profiling endpoints are mounted under
// /debug/pprof/.
//
// With -follow the process is a read replica: it opens (or creates) its
// own paged index at -index, tails the leader's WAL over
// GET /wal/stream, and serves queries only — mutations answer 501.
// /readyz additionally gates on the replica having caught up within
// -max-replica-lag, so load balancers never route to a stale follower.
//
// GET /subscribe registers a standing NWC query and streams its answer
// as Server-Sent Events whenever a mutation may have changed it, with
// Last-Event-ID resume (works on leaders, followers and sharded
// backends; tune the per-subscription queue with -sub-queue). With
// -retain-views N, as_of_lsn= on /nwc and /knwc reads the answer as of
// a past LSN from the retained views.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"time"

	"nwcq"
	"nwcq/internal/datagen"
	"nwcq/internal/repl"
	"nwcq/internal/server"
	"nwcq/internal/shard"
)

func main() {
	var (
		data        = flag.String("data", "", "CSV dataset file (x,y[,id] per line)")
		index       = flag.String("index", "", "page file for a disk-backed index: reopened if it exists (replaying its WAL), else built from -data; with -shards > 1, a directory of per-shard page files")
		shards      = flag.Int("shards", 1, "spatial shards: 1 serves a single index, > 1 a scatter-gather router over a grid partition")
		parallelism = flag.Int("parallelism", 0, "query worker-pool width: scatter fan-out over shards and batch execution (0 = GOMAXPROCS, 1 = sequential)")
		resultCache = flag.Int("result-cache", 0, "query result cache entries per query kind, invalidated by any mutation (0 disables)")
		addr        = flag.String("addr", ":8080", "listen address")
		bulk        = flag.Bool("bulk", true, "bulk-load the index")
		slowlog     = flag.Duration("slowlog", 0, "slow-query log threshold (0 disables), e.g. 100ms")
		walSync     = flag.String("wal-sync", "always", "WAL fsync policy for -index: always, interval or never")
		walInterval = flag.Duration("wal-sync-interval", 100*time.Millisecond, "background fsync cadence when -wal-sync=interval")
		shutdownTO  = flag.Duration("shutdown-timeout", 10*time.Second, "grace period for in-flight requests on SIGINT/SIGTERM")
		follow      = flag.String("follow", "", "run as a read replica of this leader URL (e.g. http://leader:8080); requires -index, serves reads only")
		maxLag      = flag.Duration("max-replica-lag", 10*time.Second, "with -follow: /readyz answers 503 once the replica lags the leader by more than this (0 disables the gate)")
		retainViews = flag.Int("retain-views", 0, "retain the last N superseded index views for as_of_lsn temporal reads (0 disables; single index only)")
		subQueue    = flag.Int("sub-queue", 0, "per-subscription pending-frame queue for GET /subscribe (0 = default 64); overflow coalesces to a resync frame")
		logFormat   = flag.String("log-format", "text", "access log format: text or json")
		accessLog   = flag.Bool("access-log", true, "log every HTTP request")
		querySample = flag.Int("query-log-sample", 0, "sample 1 in N NWC/kNWC requests into the wide-event query log (0 disables)")
	)
	flag.Parse()
	logger, err := newLogger(*logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nwcserve: %v\n", err)
		os.Exit(2)
	}
	slog.SetDefault(logger)

	opts := []nwcq.BuildOption{nwcq.WithSlowQueryThreshold(*slowlog)}
	if *bulk {
		opts = append(opts, nwcq.WithBulkLoad())
	}
	if *retainViews > 0 {
		opts = append(opts, nwcq.WithViewRetention(*retainViews))
	}
	if *subQueue > 0 {
		opts = append(opts, nwcq.WithSubscriptionQueue(*subQueue))
	}
	switch *walSync {
	case "always":
		opts = append(opts, nwcq.WithWALSync(nwcq.SyncAlways))
	case "interval":
		opts = append(opts, nwcq.WithWALSyncInterval(*walInterval))
	case "never":
		opts = append(opts, nwcq.WithWALSync(nwcq.SyncNever))
	default:
		fmt.Fprintf(os.Stderr, "nwcserve: unknown -wal-sync %q (want always, interval or never)\n", *walSync)
		os.Exit(2)
	}

	// Listen before opening the backend: building or reopening an index
	// (WAL replay in particular) can take a while, and orchestrators
	// probe /healthz and /readyz from the first second. The boot handler
	// answers liveness immediately and 503s everything else; once the
	// backend is open the full handler is swapped in atomically and
	// /readyz flips to 200. cmd/nwcload gates its warmup on exactly that
	// transition.
	health := server.NewHealth()
	var handler atomic.Pointer[http.Handler]
	boot := bootHandler(health)
	handler.Store(&boot)
	srv := &http.Server{
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			(*handler.Load()).ServeHTTP(w, r)
		}),
		ReadHeaderTimeout: 5 * time.Second,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(logger, err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	logger.Info("listening, opening backend", "addr", *addr)

	srvOpts := []server.Option{server.WithHealth(health)}
	if *querySample > 0 {
		srvOpts = append(srvOpts, server.WithQueryLog(logger, *querySample))
	}
	var (
		qr           nwcq.Querier
		mu           nwcq.Mutator
		closeIndex   func() error
		followerDone chan struct{}
	)
	if *follow != "" {
		px, follower, err := openFollower(logger, *follow, *index, *data, *shards, *maxLag, *parallelism, *resultCache, opts)
		if err != nil {
			fatal(logger, err)
		}
		// Reads only: a nil Mutator makes /insert and /delete answer 501,
		// so the leader's WAL stays the single source of mutations.
		qr, mu, closeIndex = px, nil, px.Close
		followerDone = make(chan struct{})
		go func() {
			defer close(followerDone)
			follower.Run(ctx)
		}()
		srvOpts = append(srvOpts, server.WithReplica(follower.Status))
	} else {
		var err error
		qr, mu, closeIndex, err = openBackend(logger, *data, *index, *shards, *parallelism, *resultCache, opts)
		if err != nil {
			fatal(logger, err)
		}
	}
	api := server.New(qr, mu, srvOpts...)
	mux := http.NewServeMux()
	mux.Handle("/", api.Handler())
	// Profiling endpoints: CPU/heap/goroutine profiles for go tool pprof.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	var full http.Handler = mux
	if *accessLog {
		full = logRequests(logger, full)
	}
	handler.Store(&full)
	health.SetReady(true)
	logger.Info("serving NWC queries", "addr", *addr)

	// Graceful shutdown: the first SIGINT/SIGTERM stops accepting
	// connections and gives in-flight requests -shutdown-timeout to
	// finish; a second signal kills the process the default way.

	select {
	case err := <-errc:
		fatal(logger, err)
	case <-ctx.Done():
		stop()
		logger.Info("shutting down", "grace", *shutdownTO)
		// End the long-lived streams (WAL shipping, SSE subscriptions)
		// first: Shutdown waits for in-flight handlers, and those never
		// finish while their clients stay connected.
		api.Close()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownTO)
		err := srv.Shutdown(shutdownCtx)
		cancel()
		if err != nil {
			logger.Error("shutdown incomplete", "err", err)
		}
	}
	// The server is drained (or timed out): checkpoint and release the
	// index so the next start opens clean, with no WAL to replay. A
	// follower must stop applying records first, or the replay loop
	// would race the close.
	if followerDone != nil {
		<-followerDone
	}
	if err := closeIndex(); err != nil {
		fatal(logger, err)
	}
	logger.Info("stopped")
}

// openBackend builds or opens the query/mutation backend per the
// flags. With shards > 1 it is a scatter-gather router (in-memory from
// -data, or a directory of per-shard page files when -index is set);
// otherwise a single index as before: paged when indexPath is set
// (reopened if the file exists, built from data otherwise), in-memory
// built from data when it is not. The returned func releases whatever
// was opened.
func openBackend(logger *slog.Logger, data, indexPath string, shards, parallelism, resultCache int, opts []nwcq.BuildOption) (nwcq.Querier, nwcq.Mutator, func() error, error) {
	if shards > 1 {
		// The router owns the scatter width and the (single, top-level)
		// result cache; the per-shard build options deliberately get
		// neither, so shard-local caches never duplicate the router's.
		return openSharded(logger, data, indexPath, shards, parallelism, resultCache, opts)
	}
	opts = append(opts, nwcq.WithParallelism(parallelism), nwcq.WithResultCache(resultCache))
	return openIndex(logger, data, indexPath, opts)
}

// openSharded serves -shards > 1: reopen the shard directory if its
// manifest exists, else build the partition from -data (on disk when
// indexPath names the directory, in memory otherwise).
func openSharded(logger *slog.Logger, data, indexPath string, shards, parallelism, resultCache int, opts []nwcq.BuildOption) (nwcq.Querier, nwcq.Mutator, func() error, error) {
	started := time.Now()
	if indexPath != "" {
		if _, err := os.Stat(filepath.Join(indexPath, "manifest.json")); err == nil {
			sh, err := shard.OpenSharded(indexPath, shard.Options{Build: opts, Parallelism: parallelism, ResultCache: resultCache})
			if err != nil {
				return nil, nil, nil, err
			}
			logger.Info("opened sharded index",
				"dir", indexPath,
				"shards", sh.Shards(),
				"points", sh.Len(),
				"elapsed", time.Since(started).Round(time.Millisecond))
			return sh, sh, sh.Close, nil
		} else if !errors.Is(err, os.ErrNotExist) {
			return nil, nil, nil, err
		}
	}
	if data == "" {
		if indexPath != "" {
			return nil, nil, nil, fmt.Errorf("shard directory %s has no manifest and -data was not given to build it", indexPath)
		}
		return nil, nil, nil, errors.New("-data is required (or -index pointing at an existing shard directory)")
	}
	pts, err := loadPoints(data)
	if err != nil {
		return nil, nil, nil, err
	}
	sh, err := shard.NewSharded(pts, shard.Options{Shards: shards, Dir: indexPath, Build: opts, Parallelism: parallelism, ResultCache: resultCache})
	if err != nil {
		return nil, nil, nil, err
	}
	logger.Info("built sharded index",
		"dir", indexPath,
		"shards", sh.Shards(),
		"points", sh.Len(),
		"elapsed", time.Since(started).Round(time.Millisecond))
	return sh, sh, sh.Close, nil
}

// openIndex is the single-index (shards = 1) path of openBackend. A
// paged index is returned as the *nwcq.PagedIndex itself (not its
// embedded Index) so the server can discover the replication surface —
// GET /wal/stream works only against a WAL-backed index.
func openIndex(logger *slog.Logger, data, indexPath string, opts []nwcq.BuildOption) (nwcq.Querier, nwcq.Mutator, func() error, error) {
	started := time.Now()
	if indexPath != "" {
		if _, err := os.Stat(indexPath); err == nil {
			px, err := nwcq.OpenPaged(indexPath, opts...)
			if err != nil {
				return nil, nil, nil, err
			}
			logger.Info("opened paged index",
				"path", indexPath,
				"points", px.Len(),
				"elapsed", time.Since(started).Round(time.Millisecond),
				"tree_height", px.TreeHeight())
			return px, px, px.Close, nil
		} else if !errors.Is(err, os.ErrNotExist) {
			return nil, nil, nil, err
		}
	}
	if data == "" {
		if indexPath != "" {
			return nil, nil, nil, fmt.Errorf("index file %s does not exist and -data was not given to build it", indexPath)
		}
		return nil, nil, nil, errors.New("-data is required (or -index pointing at an existing index file)")
	}
	pts, err := loadPoints(data)
	if err != nil {
		return nil, nil, nil, err
	}
	if indexPath != "" {
		px, err := nwcq.BuildPaged(pts, indexPath, opts...)
		if err != nil {
			return nil, nil, nil, err
		}
		logger.Info("built paged index",
			"path", indexPath,
			"points", px.Len(),
			"elapsed", time.Since(started).Round(time.Millisecond),
			"tree_height", px.TreeHeight())
		return px, px, px.Close, nil
	}
	idx, err := nwcq.Build(pts, opts...)
	if err != nil {
		return nil, nil, nil, err
	}
	logger.Info("indexed",
		"points", idx.Len(),
		"elapsed", time.Since(started).Round(time.Millisecond),
		"tree_height", idx.TreeHeight())
	return idx, idx, func() error { return nil }, nil
}

// openFollower opens (or creates empty) the follower's local paged
// index and builds the replication client around it.
func openFollower(logger *slog.Logger, leader, indexPath, data string, shards int, maxLag time.Duration, parallelism, resultCache int, opts []nwcq.BuildOption) (*nwcq.PagedIndex, *repl.Follower, error) {
	switch {
	case indexPath == "":
		return nil, nil, errors.New("-follow requires -index: the follower's local page file")
	case shards != 1:
		return nil, nil, errors.New("-follow supports a single index only (drop -shards)")
	case data != "":
		return nil, nil, errors.New("-follow replicates the leader's data; drop -data")
	}
	opts = append(opts, nwcq.WithParallelism(parallelism), nwcq.WithResultCache(resultCache))
	started := time.Now()
	var (
		px  *nwcq.PagedIndex
		err error
	)
	if _, serr := os.Stat(indexPath); serr == nil {
		px, err = nwcq.OpenPaged(indexPath, opts...)
	} else if errors.Is(serr, os.ErrNotExist) {
		px, err = nwcq.BuildPaged(nil, indexPath, opts...)
	} else {
		err = serr
	}
	if err != nil {
		return nil, nil, err
	}
	logger.Info("follower index open",
		"path", indexPath,
		"points", px.Len(),
		"replica_lsn", px.ReplicaLSN(),
		"elapsed", time.Since(started).Round(time.Millisecond))
	follower, err := repl.New(repl.Config{Leader: leader, MaxLag: maxLag, Logger: logger}, px)
	if err != nil {
		px.Close()
		return nil, nil, err
	}
	return px, follower, nil
}

func loadPoints(path string) ([]nwcq.Point, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	raw, err := datagen.LoadCSV(f)
	f.Close()
	if err != nil {
		return nil, err
	}
	pts := make([]nwcq.Point, len(raw))
	for i, p := range raw {
		pts[i] = nwcq.Point{X: p.X, Y: p.Y, ID: p.ID}
	}
	return pts, nil
}

func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
}

// bootHandler serves the startup window before the backend is open:
// liveness succeeds (the process is up), readiness and everything else
// answer 503 so load balancers and the load harness keep waiting.
func bootHandler(h *server.Health) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !h.Ready() {
			http.Error(w, "starting", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "starting", http.StatusServiceUnavailable)
	})
	return mux
}

// logRequests wraps h with one structured access-log line per request.
// server.StatusWriter preserves http.Flusher, which the streaming
// endpoints (WAL shipping, SSE subscriptions) depend on.
func logRequests(logger *slog.Logger, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := server.NewStatusWriter(w)
		h.ServeHTTP(rec, r)
		logger.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"query", r.URL.RawQuery,
			"status", rec.Status(),
			"duration", time.Since(start).Round(time.Microsecond),
			"remote", r.RemoteAddr)
	})
}

func fatal(logger *slog.Logger, err error) {
	logger.Error("fatal", "err", err)
	os.Exit(1)
}
