package nwcq

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"nwcq/internal/metrics"
	"nwcq/internal/trace"
)

// Per-query structured tracing and the slow-query log.
//
// ExplainNWC and ExplainKNWC run a query with a trace recorder attached
// to its tree reader: every node visit, pruning decision and phase
// transition of the algorithm is attributed to the phase it happened
// in, with monotonic timestamps. The ordinary query path carries a nil
// recorder, so tracing costs it exactly one nil-check branch per
// instrumentation point — no clocks, no atomics, no allocation (see
// BenchmarkNWCTraceOff/BenchmarkNWCTraceOn).
//
// The slow-query log is a lock-free ring (internal/metrics.Ring) of the
// most recent queries that exceeded a configurable latency threshold;
// recording is one atomic increment plus one pointer store, off the
// fast path entirely while the threshold is unset.

// PhaseTrace is one algorithm phase's share of a traced query. Phases
// interleave during the best-first traversal, so Duration and
// NodeVisits are totals accumulated across Entered entries.
type PhaseTrace struct {
	// Phase names the stage: "validate", "descent", "srr",
	// "window-enum", "verify" or "knwc-dedup".
	Phase string `json:"phase"`
	// Duration is the wall time spent in the phase (monotonic clock).
	Duration time.Duration `json:"duration_ns"`
	// Entered counts how many times the traversal switched into the
	// phase.
	Entered int `json:"entered"`
	// NodeVisits counts R*-tree nodes read while in the phase; summed
	// over all phases it equals the query's Stats.NodeVisits.
	NodeVisits uint64 `json:"node_visits"`
}

// TraceCounters itemises the pruning and routing decisions of a traced
// query, splitting by rule what Stats aggregates (ObjectsSkipped is
// SRRSkips+DEPSkippedObjects; NodesPruned is DIPPruned+DEPPrunedNodes).
type TraceCounters struct {
	// SRRShrinks counts anchor objects whose search region SRR shrank
	// under a finite bound; SRRSkips counts those it eliminated.
	SRRShrinks int64 `json:"srr_shrinks"`
	SRRSkips   int64 `json:"srr_skips"`
	// DIPPrunedNodes and DEPPrunedNodes count index nodes pruned by
	// each rule; DEPSkippedObjects counts window queries DEP cancelled.
	DIPPrunedNodes    int64 `json:"dip_pruned_nodes"`
	DEPPrunedNodes    int64 `json:"dep_pruned_nodes"`
	DEPSkippedObjects int64 `json:"dep_skipped_objects"`
	// GridProbes counts density-grid upper-bound probes.
	GridProbes int64 `json:"grid_probes"`
	// WindowQueries counts window queries issued; CandidateWindows and
	// QualifiedWindows count windows enumerated and windows holding at
	// least N objects; GroupsEmitted counts groups that survived every
	// distance gate and reached the result (or the kNWC pool).
	WindowQueries    int64 `json:"window_queries"`
	CandidateWindows int64 `json:"candidate_windows"`
	QualifiedWindows int64 `json:"qualified_windows"`
	GroupsEmitted    int64 `json:"groups_emitted"`
	// IWPJumpStarts counts window queries started below the root via a
	// backward pointer, IWPRootStarts those that fell back to the root,
	// and IWPOverlapScans the overlapping-node subtree scans run to
	// restore completeness after a below-root start.
	IWPJumpStarts   int64 `json:"iwp_jump_starts"`
	IWPRootStarts   int64 `json:"iwp_root_starts"`
	IWPOverlapScans int64 `json:"iwp_overlap_scans"`
	// DedupOffered and DedupAccepted count kNWC candidate-pool traffic:
	// groups offered, and offers that entered the pool.
	DedupOffered  int64 `json:"dedup_offered"`
	DedupAccepted int64 `json:"dedup_accepted"`
}

// QueryTrace is the structured trace of one explained query.
type QueryTrace struct {
	// Kind is "nwc" or "knwc".
	Kind string `json:"kind"`
	// Scheme and Measure are the resolved scheme and distance measure.
	Scheme  string `json:"scheme"`
	Measure string `json:"measure"`
	// StartedAt is the wall-clock start; Duration the monotonic total.
	StartedAt time.Time     `json:"started_at"`
	Duration  time.Duration `json:"duration_ns"`
	// NodeVisits is the query's total I/O cost; it equals the sum of
	// the per-phase NodeVisits.
	NodeVisits uint64 `json:"node_visits"`
	// Phases lists every phase entered, in algorithm order.
	Phases   []PhaseTrace  `json:"phases"`
	Counters TraceCounters `json:"counters"`
	// HeapHighWater and CandidateHighWater are the peak sizes of the
	// best-first priority queue and the window-query candidate buffer —
	// the query's two growable scratch structures.
	HeapHighWater      int `json:"heap_high_water"`
	CandidateHighWater int `json:"candidate_high_water"`
}

// String returns the measure's name ("max", "min", "avg", "window").
func (m Measure) String() string {
	im, err := m.internal()
	if err != nil {
		return fmt.Sprintf("Measure(%d)", int(m))
	}
	return im.String()
}

// queryTraceFrom assembles the public trace from a finished recorder
// and the query's Stats (which supplies the counters both share).
func queryTraceFrom(kind string, scheme Scheme, measure Measure, rec *trace.Recorder, st Stats) *QueryTrace {
	s := rec.Snapshot()
	qt := &QueryTrace{
		Kind:       kind,
		Scheme:     scheme.String(),
		Measure:    measure.String(),
		StartedAt:  s.Start,
		Duration:   s.Total,
		NodeVisits: st.NodeVisits,
		Counters: TraceCounters{
			SRRShrinks:        s.Counters[trace.CtrSRRShrinks],
			SRRSkips:          s.Counters[trace.CtrSRRSkips],
			DIPPrunedNodes:    s.Counters[trace.CtrDIPPruned],
			DEPPrunedNodes:    s.Counters[trace.CtrDEPPrunedNodes],
			DEPSkippedObjects: s.Counters[trace.CtrDEPSkippedObjects],
			GridProbes:        int64(st.GridProbes),
			WindowQueries:     int64(st.WindowQueries),
			CandidateWindows:  int64(st.CandidateWindows),
			QualifiedWindows:  int64(st.QualifiedWindows),
			GroupsEmitted:     s.Counters[trace.CtrGroupsEmitted],
			IWPJumpStarts:     s.Counters[trace.CtrIWPJumpStarts],
			IWPRootStarts:     s.Counters[trace.CtrIWPRootStarts],
			IWPOverlapScans:   s.Counters[trace.CtrIWPOverlapScans],
			DedupOffered:      s.Counters[trace.CtrDedupOffered],
			DedupAccepted:     s.Counters[trace.CtrDedupAccepted],
		},
		HeapHighWater:      s.HeapHighWater,
		CandidateHighWater: s.CandidateHighWater,
	}
	for _, p := range s.Phases {
		qt.Phases = append(qt.Phases, PhaseTrace{
			Phase:      p.Phase.String(),
			Duration:   p.Duration,
			Entered:    p.Entered,
			NodeVisits: p.Visits,
		})
	}
	return qt
}

// Render formats the trace as an indented phase tree for terminals:
// one line per phase with its share of time and I/O, and detail lines
// for the pruning decisions that happened inside it.
func (t *QueryTrace) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s scheme=%s measure=%s total=%v visits=%d\n",
		t.Kind, t.Scheme, t.Measure, t.Duration.Round(time.Microsecond), t.NodeVisits)
	c := t.Counters
	details := map[string][]string{
		"descent": joinNonZero(
			kv("dip-pruned", c.DIPPrunedNodes), kv("dep-pruned", c.DEPPrunedNodes),
			kv("heap-high-water", int64(t.HeapHighWater))),
		"srr": joinNonZero(
			kv("shrunk", c.SRRShrinks), kv("skipped", c.SRRSkips),
			kv("dep-cancelled", c.DEPSkippedObjects), kv("grid-probes", c.GridProbes)),
		"window-enum": joinNonZero(
			kv("window-queries", c.WindowQueries), kv("iwp-jump-starts", c.IWPJumpStarts),
			kv("iwp-root-starts", c.IWPRootStarts), kv("iwp-overlap-scans", c.IWPOverlapScans),
			kv("candidate-high-water", int64(t.CandidateHighWater))),
		"verify": joinNonZero(
			kv("windows", c.CandidateWindows), kv("qualified", c.QualifiedWindows),
			kv("groups-emitted", c.GroupsEmitted)),
		"knwc-dedup": joinNonZero(
			kv("offered", c.DedupOffered), kv("accepted", c.DedupAccepted)),
	}
	for i, p := range t.Phases {
		branch, stem := "├─", "│"
		if i == len(t.Phases)-1 {
			branch, stem = "└─", " "
		}
		fmt.Fprintf(&b, "%s %-12s %10v  entered=%-5d visits=%d\n",
			branch, p.Phase, p.Duration.Round(time.Microsecond), p.Entered, p.NodeVisits)
		for _, d := range details[p.Phase] {
			fmt.Fprintf(&b, "%s      %s\n", stem, d)
		}
	}
	return b.String()
}

func kv(name string, v int64) string {
	if v == 0 {
		return ""
	}
	return fmt.Sprintf("%s=%d", name, v)
}

func joinNonZero(parts ...string) []string {
	var kept []string
	for _, p := range parts {
		if p != "" {
			kept = append(kept, p)
		}
	}
	if len(kept) == 0 {
		return nil
	}
	return []string{strings.Join(kept, " ")}
}

// ExplainNWC answers an NWC query with tracing enabled, returning the
// result alongside its structured trace. The query still contributes to
// Metrics and the slow-query log like any other.
func (ix *Index) ExplainNWC(ctx context.Context, q Query) (Result, *QueryTrace, error) {
	rec := trace.New()
	start := time.Now()
	res, err := ix.nwc(ctx, q, rec)
	elapsed := time.Since(start)
	ix.obs.observe(kindNWC, q.Scheme, elapsed, res.Stats.NodeVisits, err)
	ix.noteSlow(kindNWC, q, 0, 0, start, elapsed, res.Stats.NodeVisits, err)
	return res, queryTraceFrom("nwc", q.Scheme, q.Measure, rec, res.Stats), err
}

// ExplainKNWC answers a kNWC query with tracing enabled, returning the
// groups alongside the query's structured trace.
func (ix *Index) ExplainKNWC(ctx context.Context, q KQuery) (KResult, *QueryTrace, error) {
	rec := trace.New()
	start := time.Now()
	res, err := ix.knwc(ctx, q, rec)
	elapsed := time.Since(start)
	ix.obs.observe(kindKNWC, q.Scheme, elapsed, res.Stats.NodeVisits, err)
	ix.noteSlow(kindKNWC, q.Query, q.K, q.M, start, elapsed, res.Stats.NodeVisits, err)
	return res, queryTraceFrom("knwc", q.Scheme, q.Measure, rec, res.Stats), err
}

// ---------------------------------------------------------------------
// Slow-query log
// ---------------------------------------------------------------------

// SlowQueryEntry records one query that exceeded the slow-query
// threshold: its parameters, timing and I/O cost.
type SlowQueryEntry struct {
	// Kind is "nwc" or "knwc".
	Kind    string `json:"kind"`
	Scheme  string `json:"scheme"`
	Measure string `json:"measure"`
	// The query parameters.
	X      float64 `json:"x"`
	Y      float64 `json:"y"`
	Length float64 `json:"length"`
	Width  float64 `json:"width"`
	N      int     `json:"n"`
	K      int     `json:"k,omitempty"`
	M      int     `json:"m,omitempty"`
	// StartedAt is the wall-clock start, Duration the monotonic
	// elapsed time, NodeVisits the I/O cost.
	StartedAt  time.Time     `json:"started_at"`
	Duration   time.Duration `json:"duration_ns"`
	NodeVisits uint64        `json:"node_visits"`
	// Source names the level that recorded the entry in a sharded
	// deployment: "router" for whole routed queries (end-to-end time
	// including scatter, border fetches and merging) or "shard<i>" for
	// one shard's local share. Empty on a single-index backend.
	Source string `json:"source,omitempty"`
	// Error is set when the query failed (including cancellation).
	Error string `json:"error,omitempty"`
}

// slowLogSize is the number of entries the slow-query ring retains.
const slowLogSize = 128

// slowLog pairs the latency threshold (atomic, runtime-adjustable) with
// the lock-free ring of offending queries. thresholdNs zero means off:
// the query path then pays one atomic load and one branch.
type slowLog struct {
	thresholdNs atomic.Int64
	ring        *metrics.Ring[SlowQueryEntry]
}

func newSlowLog(threshold time.Duration) *slowLog {
	s := &slowLog{ring: metrics.NewRing[SlowQueryEntry](slowLogSize)}
	if threshold > 0 {
		s.thresholdNs.Store(int64(threshold))
	}
	return s
}

// WithSlowQueryThreshold enables the slow-query log: every NWC/kNWC
// query slower than threshold is recorded in a fixed-size lock-free
// ring readable via SlowQueries (and GET /debug/slowlog on the server).
// Zero or negative leaves the log disabled, its default.
func WithSlowQueryThreshold(threshold time.Duration) BuildOption {
	return func(o *buildOptions) { o.slowThreshold = threshold }
}

// SetSlowQueryThreshold adjusts the slow-query threshold at runtime;
// zero or negative disables the log. Safe to call concurrently with
// queries.
func (ix *Index) SetSlowQueryThreshold(threshold time.Duration) {
	if threshold < 0 {
		threshold = 0
	}
	ix.slow.thresholdNs.Store(int64(threshold))
}

// SlowQueryThreshold returns the current threshold, zero when the log
// is disabled.
func (ix *Index) SlowQueryThreshold() time.Duration {
	return time.Duration(ix.slow.thresholdNs.Load())
}

// SlowQueries returns the retained slow-query log entries, newest
// first. Safe to call concurrently with queries.
func (ix *Index) SlowQueries() []SlowQueryEntry {
	ptrs := ix.slow.ring.Snapshot()
	out := make([]SlowQueryEntry, 0, len(ptrs))
	for _, p := range ptrs {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].StartedAt.After(out[j].StartedAt) })
	return out
}

// noteSlow records the query in the slow log when it exceeded the
// threshold. The entry is built only past the threshold check, so the
// fast path costs an atomic load and a compare. Queries rejected at
// validation never executed — and may carry NaN/Inf parameters that
// would poison the log's JSON encoding — so they are not recorded.
func (ix *Index) noteSlow(kind queryKind, q Query, k, m int, start time.Time, elapsed time.Duration, visits uint64, err error) {
	th := ix.slow.thresholdNs.Load()
	if th <= 0 || int64(elapsed) < th || errors.Is(err, ErrInvalidQuery) {
		return
	}
	e := &SlowQueryEntry{
		Kind:    kindNames[kind],
		Scheme:  q.Scheme.String(),
		Measure: q.Measure.String(),
		X:       q.X, Y: q.Y, Length: q.Length, Width: q.Width, N: q.N,
		K: k, M: m,
		StartedAt: start, Duration: elapsed, NodeVisits: visits,
	}
	if err != nil {
		e.Error = err.Error()
	}
	ix.slow.ring.Put(e)
}
