package nwcq

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"nwcq/internal/geom"
	"nwcq/internal/pager"
	"nwcq/internal/rstar"
	"nwcq/internal/wal"
)

// Durability binding for paged indexes: mutations append a logical
// record to the write-ahead log before the page store publishes the
// change, checkpoints fold the log into the page file once it passes a
// size threshold, and OpenPaged replays committed records past the last
// checkpoint (durable.go owns the record format and the protocol;
// internal/wal owns frames, segments and fsync scheduling).
//
// Protocol invariants:
//
//   - Log before publish: the record for a mutation is appended (though
//     not necessarily fsynced) before WriteBatch.Commit writes the
//     shadow pages' new root linkage. The page file's durable commit
//     point is the checkpointed header, which only advances after the
//     log covering it is fsynced, so a crash at any step recovers a
//     prefix of acknowledged mutations.
//   - Aborts: if the commit or publish fails after the record was
//     appended, an abort record neutralises it for replay. If even the
//     abort cannot be appended the log is poisoned (sticky error) and
//     further mutations are refused — the torn state stays frozen for
//     recovery instead of diverging.
//   - Freed pages stay untouched until the checkpoint that stops
//     referencing them is durable: reader-quiesced retired node IDs
//     wait in pending (drainRetiredLocked routes them here) and return
//     to the allocator only after WriteCheckpoint fsyncs the header.
//   - Recovery replays through the same copy-on-write path as live
//     mutations. With an empty free set, replay only appends pages, so
//     it never overwrites state the checkpoint still needs — a crash
//     during recovery just recovers again from the same base.

// SyncPolicy selects when a mutation's WAL record is fsynced, trading
// durability of the most recent writes against latency. See the README
// "Durability" section for the exact guarantee each policy gives.
type SyncPolicy int

const (
	// SyncAlways fsyncs before a mutation returns: an acknowledged
	// write survives any crash. The default.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs in the background at a configurable interval
	// (WithWALSyncInterval): a crash loses at most the last interval's
	// acknowledged writes, never corrupts the index.
	SyncInterval
	// SyncNever leaves fsync to segment rotation, checkpoints and
	// Close: a crash loses an unbounded suffix of acknowledged writes,
	// never corrupts the index.
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

const (
	// defaultCheckpointBytes triggers a checkpoint once this many log
	// bytes accumulate (WithWALCheckpointBytes overrides).
	defaultCheckpointBytes = 1 << 20
	// defaultSyncInterval is the SyncInterval flush cadence when
	// WithWALSyncInterval is not given a duration.
	defaultSyncInterval = 100 * time.Millisecond
)

// Record payloads: one op byte, then op-specific data. Insert/delete
// carry a point batch (single mutations are batches of one); abort
// carries the LSN it neutralises. Apply wraps a replicated insert or
// delete a follower applied — the leader's LSN rides inside it so the
// follower's replica position recovers through the ordinary replay
// path. Reset marks a follower discarding its state ahead of a
// snapshot re-bootstrap: replay deletes every indexed point and zeroes
// the replica position at that spot in the sequence.
const (
	recInsert byte = 1
	recDelete byte = 2
	recAbort  byte = 3
	recApply  byte = 4
	recReset  byte = 5
)

const recPointSize = 24 // x, y float64 bits + id, all big-endian u64

// encodeMutation serialises an insert or delete batch.
func encodeMutation(op byte, pts []geom.Point) []byte {
	buf := make([]byte, 5+len(pts)*recPointSize)
	buf[0] = op
	binary.BigEndian.PutUint32(buf[1:5], uint32(len(pts)))
	off := 5
	for _, p := range pts {
		binary.BigEndian.PutUint64(buf[off:], math.Float64bits(p.X))
		binary.BigEndian.PutUint64(buf[off+8:], math.Float64bits(p.Y))
		binary.BigEndian.PutUint64(buf[off+16:], p.ID)
		off += recPointSize
	}
	return buf
}

// decodeMutation parses an insert or delete payload (op already read).
func decodeMutation(data []byte) ([]geom.Point, error) {
	if len(data) < 5 {
		return nil, fmt.Errorf("nwcq: wal record truncated (%d bytes)", len(data))
	}
	n := int(binary.BigEndian.Uint32(data[1:5]))
	if len(data) != 5+n*recPointSize {
		return nil, fmt.Errorf("nwcq: wal record claims %d points in %d bytes", n, len(data))
	}
	pts := make([]geom.Point, n)
	off := 5
	for i := range pts {
		pts[i] = geom.Point{
			X:  math.Float64frombits(binary.BigEndian.Uint64(data[off:])),
			Y:  math.Float64frombits(binary.BigEndian.Uint64(data[off+8:])),
			ID: binary.BigEndian.Uint64(data[off+16:]),
		}
		off += recPointSize
	}
	return pts, nil
}

func encodeAbort(lsn uint64) []byte {
	buf := make([]byte, 9)
	buf[0] = recAbort
	binary.BigEndian.PutUint64(buf[1:], lsn)
	return buf
}

// encodeApply wraps a replicated mutation payload with the leader LSN
// it carried: [recApply][8B leader LSN][inner insert/delete payload].
// leaderLSN zero means "position unknown" (intermediate snapshot
// chunks) and leaves the recovered replica position untouched.
func encodeApply(leaderLSN uint64, inner []byte) []byte {
	buf := make([]byte, 9+len(inner))
	buf[0] = recApply
	binary.BigEndian.PutUint64(buf[1:9], leaderLSN)
	copy(buf[9:], inner)
	return buf
}

// durability binds a WAL to a paged index. All mutable fields are
// guarded by Index.wmu (mutations, checkpoints and Close already
// serialise there); the atomic counters feed Metrics without it.
type durability struct {
	log       *wal.Log
	pages     *pager.Store
	policy    SyncPolicy
	ckptBytes int64

	// pending holds reader-quiesced retired node IDs awaiting a durable
	// checkpoint before they may be reallocated. Guarded by Index.wmu.
	pending []rstar.NodeID
	// walFailed poisons mutations after an append failure; ckptErr
	// remembers a failed checkpoint until one succeeds (surfaced by
	// Close if never cleared). Guarded by Index.wmu.
	walFailed error
	ckptErr   error

	checkpoints atomic.Uint64
	replayed    uint64 // records replayed at open; written once

	// settled is the highest LSN whose fate is decided: the record at
	// settled either published or is the abort that neutralises an
	// earlier record. Replication streams emit a record only once its
	// fate is known, so a follower never applies a mutation the leader
	// may yet abort. Advanced under Index.wmu; read lock-free.
	settled atomic.Uint64

	// replica is the highest leader LSN applied locally when this index
	// is a replication follower (zero on leaders). Recovered from the
	// page-file header plus recApply records; persisted by checkpoints.
	replica atomic.Uint64
}

func newDurability(log *wal.Log, pages *pager.Store, o buildOptions) *durability {
	ckpt := o.walCheckpointBytes
	if ckpt <= 0 {
		ckpt = defaultCheckpointBytes
	}
	d := &durability{log: log, pages: pages, policy: o.walSync, ckptBytes: ckpt}
	// Everything already in the log predates this process's mutations,
	// so its fate is decided (recovery replays exactly that prefix).
	d.settled.Store(log.AppendedLSN())
	return d
}

// append logs one mutation record. Called under Index.wmu, before the
// write batch commits.
func (d *durability) append(payload []byte) (uint64, error) {
	if d.walFailed != nil {
		return 0, fmt.Errorf("nwcq: write-ahead log failed, index is read-only: %w", d.walFailed)
	}
	lsn, err := d.log.Append(payload)
	if err != nil {
		d.walFailed = err
		return 0, err
	}
	return lsn, nil
}

// abort neutralises an appended record whose mutation failed to commit.
// If the abort itself cannot be appended, the log is poisoned: replay
// would otherwise apply a mutation the caller saw fail. A successful
// abort settles both records and is fsynced eagerly — until it is
// durable, the replication stream must hold back the aborted record
// (and everything behind it).
func (d *durability) abort(lsn uint64) {
	if d.walFailed != nil {
		return
	}
	alsn, err := d.log.Append(encodeAbort(lsn))
	if err != nil {
		d.walFailed = err
		return
	}
	d.settled.Store(alsn)
	_ = d.log.Sync(alsn)
}

// waitDurable blocks until lsn is on stable storage, per policy. Called
// after Index.wmu is released, so committers queued behind an fsync
// coalesce with it (group commit) while the next writer proceeds.
func (d *durability) waitDurable(lsn uint64) error {
	if d.policy != SyncAlways || lsn == 0 {
		return nil
	}
	return d.log.Sync(lsn)
}

// maybeCheckpointLocked checkpoints when enough log accumulated since
// the last one. A checkpoint failure does not fail the mutation — its
// record is already safely logged — but is remembered for Close.
// Called under Index.wmu; tree is the current published tree.
func (d *durability) maybeCheckpointLocked(tree *rstar.Tree) {
	if d.log.SizeSinceCheckpoint() < d.ckptBytes {
		return
	}
	if err := d.checkpointLocked(tree); err != nil {
		d.ckptErr = err
	}
}

// checkpointLocked folds the log into the page file:
//
//	fsync log → fsync data pages → write+fsync header (the commit
//	point: root, page count, checkpoint LSN in one page write) →
//	release pending retired pages → recycle covered segments.
//
// Called under Index.wmu (or during open, before the Index exists).
func (d *durability) checkpointLocked(tree *rstar.Tree) error {
	lsn := d.log.AppendedLSN()
	if err := d.log.Sync(lsn); err != nil {
		return fmt.Errorf("nwcq: checkpoint: %w", err)
	}
	if err := d.pages.SyncData(); err != nil {
		return fmt.Errorf("nwcq: checkpoint: %w", err)
	}
	// The replica position commits atomically with the checkpoint LSN:
	// both ride the single header write below.
	d.pages.SetReplicaLSN(d.replica.Load())
	if err := d.pages.WriteCheckpoint(lsn); err != nil {
		return fmt.Errorf("nwcq: checkpoint: %w", err)
	}
	// The durable image no longer references the pending pages; they
	// may be reallocated now (volatile free list, no page writes).
	if len(d.pending) > 0 {
		if err := tree.ReleaseNodes(d.pending); err != nil {
			return fmt.Errorf("nwcq: checkpoint: release retired pages: %w", err)
		}
		d.pending = nil
	}
	if err := d.log.Checkpointed(lsn); err != nil {
		return fmt.Errorf("nwcq: checkpoint: %w", err)
	}
	d.ckptErr = nil
	d.checkpoints.Add(1)
	return nil
}

// closeLocked is Close's durability teardown. With the append path
// poisoned, a final checkpoint is both impossible and wrong — the torn
// log tail must stay frozen for recovery — so it surfaces the sticky
// error exactly once (instead of the checkpoint error ladder re-wrapping
// it) and still hands the deferred retired pages back to the volatile
// allocator so the in-process tree is not leaked. Otherwise it runs the
// normal final checkpoint. Called under Index.wmu.
func (d *durability) closeLocked(tree *rstar.Tree) error {
	if d.walFailed != nil {
		if len(d.pending) > 0 {
			_ = tree.ReleaseNodes(d.pending)
			d.pending = nil
		}
		return fmt.Errorf("nwcq: close: write-ahead log failed: %w", d.walFailed)
	}
	return d.checkpointLocked(tree)
}

// replayWAL applies committed records past the checkpoint through the
// same COW write path live mutations use, returning the recovered tree,
// the number of records applied, and the recovered replica position
// (baseReplica updated in record order by recApply/recReset). The free
// set is empty during replay, so every shadow allocation extends the
// file and the checkpointed image stays intact — a crash mid-replay
// recovers again from the same base.
func replayWAL(tree *rstar.Tree, log *wal.Log, afterLSN, baseReplica uint64) (*rstar.Tree, int, uint64, error) {
	replica := baseReplica
	recs := log.Records(afterLSN)
	if len(recs) == 0 {
		return tree, 0, replica, nil
	}
	aborted := make(map[uint64]bool)
	for _, r := range recs {
		if len(r.Data) == 9 && r.Data[0] == recAbort {
			aborted[binary.BigEndian.Uint64(r.Data[1:])] = true
		}
	}
	applied := 0
	for _, r := range recs {
		if len(r.Data) == 0 {
			return nil, applied, replica, fmt.Errorf("nwcq: empty wal record at lsn %d", r.LSN)
		}
		op, data := r.Data[0], r.Data
		if op == recAbort || aborted[r.LSN] {
			continue
		}
		if op == recReset {
			next, err := replayReset(tree)
			if err != nil {
				return nil, applied, replica, fmt.Errorf("nwcq: replay reset lsn %d: %w", r.LSN, err)
			}
			tree = next
			replica = 0
			applied++
			continue
		}
		var leaderLSN uint64
		if op == recApply {
			if len(data) < 10 {
				return nil, applied, replica, fmt.Errorf("nwcq: truncated apply record at lsn %d", r.LSN)
			}
			leaderLSN = binary.BigEndian.Uint64(data[1:9])
			data = data[9:]
			op = data[0]
		}
		if op != recInsert && op != recDelete {
			return nil, applied, replica, fmt.Errorf("nwcq: unknown wal record op %d at lsn %d", op, r.LSN)
		}
		pts, err := decodeMutation(data)
		if err != nil {
			return nil, applied, replica, fmt.Errorf("nwcq: lsn %d: %w", r.LSN, err)
		}
		b, err := tree.BeginWrite()
		if err != nil {
			return nil, applied, replica, err
		}
		for _, p := range pts {
			if op == recInsert {
				err = b.Tree().Insert(p)
			} else {
				// A logged delete found its point when it committed;
				// replay tolerates an absent point (the record may
				// re-run after a checkpoint landed part of its batch's
				// effects — impossible for one batch, but harmless to
				// allow).
				_, err = b.Tree().Delete(p)
			}
			if err != nil {
				b.Discard()
				return nil, applied, replica, fmt.Errorf("nwcq: replay lsn %d: %w", r.LSN, err)
			}
		}
		next, _, err := b.Commit()
		if err != nil {
			return nil, applied, replica, fmt.Errorf("nwcq: replay lsn %d: %w", r.LSN, err)
		}
		// Retired IDs are ignored: reachability reconstruction after
		// replay returns every stale page to the allocator at once.
		tree = next
		applied++
		if leaderLSN > replica {
			replica = leaderLSN
		}
	}
	return tree, applied, replica, nil
}

// replayReset re-applies a follower state discard: every indexed point
// is deleted through the COW path, leaving an empty tree for the
// snapshot chunks that follow in the log.
func replayReset(tree *rstar.Tree) (*rstar.Tree, error) {
	pts, err := tree.All()
	if err != nil {
		return nil, err
	}
	b, err := tree.BeginWrite()
	if err != nil {
		return nil, err
	}
	for _, p := range pts {
		if _, err := b.Tree().Delete(p); err != nil {
			b.Discard()
			return nil, err
		}
	}
	next, _, err := b.Commit()
	if err != nil {
		return nil, err
	}
	return next, nil
}

// rebuildFreeSet reinstates the page allocator's free list as the
// complement of the recovered tree's reachable pages — the only ground
// truth after a crash, since the free list is volatile under WAL.
func rebuildFreeSet(tree *rstar.Tree, pages *pager.Store) error {
	ids, err := tree.NodeIDs()
	if err != nil {
		return err
	}
	reachable := make(map[pager.PageID]bool, len(ids))
	for _, id := range ids {
		reachable[pager.PageID(id)] = true
	}
	var free []pager.PageID
	for id := 1; id < pages.NumPages(); id++ {
		if !reachable[pager.PageID(id)] {
			free = append(free, pager.PageID(id))
		}
	}
	return pages.AddFreePages(free)
}
