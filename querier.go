package nwcq

import (
	"context"
	"io"
	"time"
)

// Querier is the read-side API of an NWC backend. Both *Index (one
// R*-tree over the whole object space) and *shard.Sharded (a
// scatter-gather router over many Index shards) satisfy it, so servers,
// CLIs and batch drivers can program against the capability instead of
// the concrete engine.
//
// Every method is safe for unrestricted concurrent use, and the context
// methods honour cancellation at node-visit granularity.
type Querier interface {
	// NWCCtx answers an NWC query under ctx.
	NWCCtx(ctx context.Context, q Query) (Result, error)
	// KNWCCtx answers a kNWC query under ctx.
	KNWCCtx(ctx context.Context, q KQuery) (KResult, error)
	// NWCBatchCtx answers many NWC queries concurrently; results are in
	// input order and the first error aborts the batch.
	NWCBatchCtx(ctx context.Context, queries []Query, opt BatchOptions) ([]Result, error)
	// KNWCBatchCtx is the kNWC batch form.
	KNWCBatchCtx(ctx context.Context, queries []KQuery, opt BatchOptions) ([]KResult, error)
	// Window runs a plain window (range) query.
	Window(minX, minY, maxX, maxY float64) ([]Point, error)
	// Nearest returns the k points nearest to (x, y), ascending by
	// distance.
	Nearest(x, y float64, k int) ([]Point, error)
	// ExplainNWC answers an NWC query with per-query tracing enabled.
	ExplainNWC(ctx context.Context, q Query) (Result, *QueryTrace, error)
	// ExplainKNWC answers a kNWC query with tracing enabled.
	ExplainKNWC(ctx context.Context, q KQuery) (KResult, *QueryTrace, error)
	// Metrics returns the backend's aggregated observability snapshot.
	// A sharded backend folds per-shard state into one snapshot.
	Metrics() MetricsSnapshot
	// WritePrometheus renders the same state in the Prometheus text
	// exposition format.
	WritePrometheus(w io.Writer) error
}

// Mutator is the write-side API of an NWC backend. Mutations are safe
// to run concurrently with queries; batch forms are atomic per index
// (a sharded backend is atomic per shard, not across shards).
type Mutator interface {
	Insert(p Point) error
	Delete(p Point) (bool, error)
	InsertBatch(pts []Point) error
	DeleteBatch(pts []Point) ([]bool, error)
	// Close releases whatever the backend holds open (page files, WAL
	// segments). In-memory backends make it a no-op.
	Close() error
}

// Introspector exposes the structural counters the /stats endpoint and
// the CLIs report. Optional: servers degrade gracefully when a backend
// does not provide it, but both *Index and *shard.Sharded do.
type Introspector interface {
	Len() int
	TreeHeight() int
	IOStats() uint64
	StorageOverheadBytes() (gridBytes, iwpBytes int)
}

// SlowLogger exposes the slow-query log. Optional, like Introspector.
type SlowLogger interface {
	SlowQueryThreshold() time.Duration
	SetSlowQueryThreshold(threshold time.Duration)
	SlowQueries() []SlowQueryEntry
}

// Close releases the index. For the in-memory form it is a no-op kept
// so *Index satisfies Mutator; PagedIndex overrides it with the real
// checkpoint-and-release teardown.
func (ix *Index) Close() error { return nil }

// Compile-time interface checks for the single-index backend. The
// sharded backend asserts the same set in internal/shard.
var (
	_ Querier      = (*Index)(nil)
	_ Mutator      = (*Index)(nil)
	_ Introspector = (*Index)(nil)
	_ SlowLogger   = (*Index)(nil)
	_ Mutator      = (*PagedIndex)(nil)
)
