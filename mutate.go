package nwcq

import (
	"fmt"
	"math"

	"nwcq/internal/core"
	"nwcq/internal/geom"
	"nwcq/internal/grid"
	"nwcq/internal/iwp"
)

// Dynamic maintenance. The paper treats the dataset as static; this
// file extends the index with Insert and Delete as a practical library
// feature:
//
//   - the R*-tree is updated in place (R* insertion with forced
//     reinsertion; deletion with condense-and-reinsert);
//   - the DEP density grid is updated incrementally, or rebuilt over an
//     enlarged space when a point lands outside it;
//   - the IWP pointer sets are snapshot structures, so mutations mark
//     them stale and the next query needing IWP rebuilds them lazily.
//
// Mutations must not run concurrently with queries or each other.

// Insert adds one point to the index.
func (ix *Index) Insert(p Point) error {
	if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) {
		return fmt.Errorf("nwcq: point (%g, %g) has non-finite coordinates", p.X, p.Y)
	}
	gp := geom.Point{X: p.X, Y: p.Y, ID: p.ID}
	if err := ix.tree.Insert(gp); err != nil {
		return err
	}
	if err := ix.grid.Add(gp); err != nil {
		// Outside the grid's space: rebuild over a space covering the
		// new point (with slack so a trickle of outliers does not cause
		// repeated rebuilds).
		if err := ix.rebuildGrid(gp); err != nil {
			return err
		}
	}
	ix.iwpStale = true
	return nil
}

// Delete removes one point (matched by coordinates and ID) and reports
// whether it was found.
func (ix *Index) Delete(p Point) (bool, error) {
	gp := geom.Point{X: p.X, Y: p.Y, ID: p.ID}
	ok, err := ix.tree.Delete(gp)
	if err != nil || !ok {
		return ok, err
	}
	if err := ix.grid.Remove(gp); err != nil {
		return true, err
	}
	ix.iwpStale = true
	return true, nil
}

// rebuildGrid rebuilds the density grid over a space that covers both
// the current space and the out-of-space point.
func (ix *Index) rebuildGrid(extra geom.Point) error {
	space := ix.grid.Space().ExtendPoint(extra)
	// Grow by 25% of the span so nearby future outliers fit too.
	space = space.Buffer(space.Width()/8, space.Height()/8)
	pts, err := ix.tree.All()
	if err != nil {
		return err
	}
	den, err := grid.New(space, ix.grid.CellSize(), pts)
	if err != nil {
		return err
	}
	eng, err := core.NewEngine(ix.tree, den, ix.iwp)
	if err != nil {
		return err
	}
	ix.grid = den
	ix.engine = eng
	return nil
}

// ensureIWP rebuilds the IWP pointers if mutations invalidated them.
// Called on the query path before any scheme that uses IWP runs.
func (ix *Index) ensureIWP() error {
	if !ix.iwpStale {
		return nil
	}
	rebuilt, err := iwp.Build(ix.tree)
	if err != nil {
		return err
	}
	eng, err := core.NewEngine(ix.tree, ix.grid, rebuilt)
	if err != nil {
		return err
	}
	ix.iwp = rebuilt
	ix.engine = eng
	ix.iwpStale = false
	ix.tree.ResetVisits()
	return nil
}
