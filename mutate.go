package nwcq

import (
	"math"
	"time"

	"nwcq/internal/geom"
	"nwcq/internal/grid"
	"nwcq/internal/rstar"
)

// Dynamic maintenance. The paper treats the dataset as static; this
// file extends the index with Insert and Delete as first-class online
// operations:
//
//   - mutations are safe to run concurrently with any number of
//     queries, including batch and IWP-scheme queries: a query pins one
//     immutable view at entry (view.go) and never observes a mutation
//     mid-flight;
//   - mutations serialise against each other on an internal writer
//     mutex — callers need no external locking;
//   - each mutation is all-or-nothing: the R*-tree delta is built in a
//     copy-on-write batch and the density grid derived by structural
//     sharing, then both are published together in a single atomic view
//     swap. A failure at any step leaves the index exactly as it was —
//     the tree and the grid can never disagree;
//   - the IWP pointer sets are per-view snapshot structures, rebuilt
//     lazily (single-flight) by the first IWP-scheme query on the new
//     view; the rebuild's node visits are accounted in IOStats, never
//     reset it, and never touch any query's private Stats.

// Insert adds one point to the index. It is safe to call concurrently
// with queries and with other mutations; the point is visible to every
// query that starts after Insert returns.
func (ix *Index) Insert(p Point) error {
	start := time.Now()
	err := ix.insert(p)
	ix.obs.observe(kindInsert, SchemeDefault, time.Since(start), 0, err)
	return err
}

func (ix *Index) insert(p Point) error {
	if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) {
		return invalid("point", "coordinates (%g, %g) must be finite", p.X, p.Y)
	}
	gp := geom.Point{X: p.X, Y: p.Y, ID: p.ID}

	ix.wmu.Lock()
	defer ix.wmu.Unlock()
	old := ix.cur.Load()

	b, err := old.tree.BeginWrite()
	if err != nil {
		return err
	}
	if err := b.Tree().Insert(gp); err != nil {
		b.Discard()
		return err
	}
	den, err := old.grid.WithAdd(gp)
	if err != nil {
		// Outside the grid's space: rebuild over a space covering the
		// new point (with slack so a trickle of outliers does not cause
		// repeated rebuilds). The rebuild reads the batch's tree, so it
		// already includes gp.
		den, err = rebuildGrid(b.Tree(), old.grid, &gp)
		if err != nil {
			b.Discard()
			return err
		}
	}
	newTree, retired, err := b.Commit()
	if err != nil {
		return err
	}
	return ix.publishLocked(newTree, den, retired)
}

// Delete removes one point (matched by coordinates and ID) and reports
// whether it was found. Like Insert it is safe under full concurrency
// and atomic: queries see either the index with the point or without
// it, never an intermediate state.
func (ix *Index) Delete(p Point) (bool, error) {
	start := time.Now()
	found, err := ix.delete(p)
	ix.obs.observe(kindDelete, SchemeDefault, time.Since(start), 0, err)
	return found, err
}

func (ix *Index) delete(p Point) (bool, error) {
	gp := geom.Point{X: p.X, Y: p.Y, ID: p.ID}

	ix.wmu.Lock()
	defer ix.wmu.Unlock()
	old := ix.cur.Load()

	b, err := old.tree.BeginWrite()
	if err != nil {
		return false, err
	}
	found, err := b.Tree().Delete(gp)
	if err != nil {
		b.Discard()
		return false, err
	}
	if !found {
		b.Discard()
		return false, nil
	}
	den, err := old.grid.WithRemove(gp)
	if err != nil {
		// The grid does not count a point the tree held — the two
		// drifted (e.g. a historic out-of-space insert). Rather than
		// publish a grid that still counts the deleted point, rebuild it
		// from the post-delete tree so the pair leaves consistent; a
		// rebuild failure abandons the whole mutation.
		den, err = rebuildGrid(b.Tree(), old.grid, nil)
		if err != nil {
			b.Discard()
			return false, err
		}
	}
	newTree, retired, err := b.Commit()
	if err != nil {
		return false, err
	}
	if err := ix.publishLocked(newTree, den, retired); err != nil {
		return false, err
	}
	return true, nil
}

// rebuildGrid builds a fresh density grid from t's current points. With
// extra set, the space is enlarged to cover it plus 12.5% slack per
// side; otherwise the old space is kept.
func rebuildGrid(t *rstar.Tree, oldGrid *grid.Density, extra *geom.Point) (*grid.Density, error) {
	pts, err := t.All()
	if err != nil {
		return nil, err
	}
	space := oldGrid.Space()
	if extra != nil {
		space = space.ExtendPoint(*extra)
	}
	// Cover every stored point: repairing drift means the tree may hold
	// points the old space never did.
	for _, p := range pts {
		space = space.ExtendPoint(p)
	}
	if !oldGrid.Space().ContainsRect(space) {
		// The space grew: add 12.5% slack per side so a trickle of
		// nearby outliers does not cause repeated rebuilds.
		space = space.Buffer(space.Width()/8, space.Height()/8)
	}
	return grid.New(space, oldGrid.CellSize(), pts)
}
