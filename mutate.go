package nwcq

import (
	"math"
	"time"

	"nwcq/internal/geom"
	"nwcq/internal/grid"
	"nwcq/internal/rstar"
	"nwcq/internal/sub"
)

// Dynamic maintenance. The paper treats the dataset as static; this
// file extends the index with Insert and Delete (and their batch forms)
// as first-class online operations:
//
//   - mutations are safe to run concurrently with any number of
//     queries, including batch and IWP-scheme queries: a query pins one
//     immutable view at entry (view.go) and never observes a mutation
//     mid-flight;
//   - mutations serialise against each other on an internal writer
//     mutex — callers need no external locking;
//   - each mutation is all-or-nothing: the R*-tree delta is built in a
//     copy-on-write batch and the density grid derived by structural
//     sharing, then both are published together in a single atomic view
//     swap. A failure at any step leaves the index exactly as it was —
//     the tree and the grid can never disagree. A batch publishes all
//     of its points in one swap: no query ever sees part of a batch;
//   - on a WAL-backed paged index (the default for BuildPaged), a
//     logical record is appended before the commit publishes any page,
//     and the call returns only once the record is durable per the
//     index's SyncPolicy (durable.go). The fsync happens after the
//     writer mutex is released, so committers queued behind it coalesce
//     into one fsync while the next mutation proceeds;
//   - the IWP pointer sets are per-view snapshot structures, rebuilt
//     lazily (single-flight) by the first IWP-scheme query on the new
//     view; the rebuild's node visits are accounted in IOStats, never
//     reset it, and never touch any query's private Stats.

// Insert adds one point to the index. It is safe to call concurrently
// with queries and with other mutations; the point is visible to every
// query that starts after Insert returns.
func (ix *Index) Insert(p Point) error {
	start := time.Now()
	err := ix.insert(p)
	ix.obs.observe(kindInsert, SchemeDefault, time.Since(start), 0, err)
	return err
}

func (ix *Index) insert(p Point) error {
	if err := validateMutationPoint(p); err != nil {
		return err
	}
	gpts := []geom.Point{{X: p.X, Y: p.Y, ID: p.ID}}
	ix.wmu.Lock()
	lsn, err := ix.insertLocked(gpts)
	ix.wmu.Unlock()
	if err != nil {
		return err
	}
	return ix.waitDurable(lsn)
}

// InsertBatch adds points atomically: all become visible in one
// published view (and, on a WAL-backed index, one log record and at
// most one fsync) or none do. An empty batch is a no-op.
func (ix *Index) InsertBatch(pts []Point) error {
	start := time.Now()
	err := ix.insertBatch(pts)
	ix.obs.observe(kindInsert, SchemeDefault, time.Since(start), 0, err)
	return err
}

func (ix *Index) insertBatch(pts []Point) error {
	if len(pts) == 0 {
		return nil
	}
	gpts := make([]geom.Point, len(pts))
	for i, p := range pts {
		if err := validateMutationPoint(p); err != nil {
			return err
		}
		gpts[i] = geom.Point{X: p.X, Y: p.Y, ID: p.ID}
	}
	ix.wmu.Lock()
	lsn, err := ix.insertLocked(gpts)
	ix.wmu.Unlock()
	if err != nil {
		return err
	}
	return ix.waitDurable(lsn)
}

func (ix *Index) insertLocked(gpts []geom.Point) (uint64, error) {
	old := ix.cur.Load()
	b, err := old.tree.BeginWrite()
	if err != nil {
		return 0, err
	}
	for i := range gpts {
		if err := b.Tree().Insert(gpts[i]); err != nil {
			b.Discard()
			return 0, err
		}
	}
	den := old.grid
	for i := range gpts {
		next, err := den.WithAdd(gpts[i])
		if err != nil {
			// Outside the grid's space: rebuild over a space covering the
			// new point (with slack so a trickle of outliers does not cause
			// repeated rebuilds). The rebuild reads the batch's tree, which
			// already holds every point of this batch, so the remaining
			// WithAdd steps are covered too.
			next, err = rebuildGrid(b.Tree(), old.grid, &gpts[i])
			if err != nil {
				b.Discard()
				return 0, err
			}
			den = next
			break
		}
		den = next
	}
	return ix.commitMutationLocked(b, ix.encodeFor(recInsert, gpts), den, recInsert, gpts, 0)
}

// Delete removes one point (matched by coordinates and ID) and reports
// whether it was found. Like Insert it is safe under full concurrency
// and atomic: queries see either the index with the point or without
// it, never an intermediate state.
func (ix *Index) Delete(p Point) (bool, error) {
	start := time.Now()
	found, err := ix.delete(p)
	ix.obs.observe(kindDelete, SchemeDefault, time.Since(start), 0, err)
	return found, err
}

func (ix *Index) delete(p Point) (bool, error) {
	gpts := []geom.Point{{X: p.X, Y: p.Y, ID: p.ID}}
	ix.wmu.Lock()
	founds, lsn, err := ix.deleteLocked(gpts)
	ix.wmu.Unlock()
	if err != nil {
		return false, err
	}
	return founds[0], ix.waitDurable(lsn)
}

// DeleteBatch removes points atomically (matched by coordinates and
// ID), returning one found flag per input point. The found deletions
// become visible in one published view — and one WAL record — or, if
// anything fails, none do. An empty batch is a no-op.
func (ix *Index) DeleteBatch(pts []Point) ([]bool, error) {
	start := time.Now()
	founds, err := ix.deleteBatch(pts)
	ix.obs.observe(kindDelete, SchemeDefault, time.Since(start), 0, err)
	return founds, err
}

func (ix *Index) deleteBatch(pts []Point) ([]bool, error) {
	if len(pts) == 0 {
		return nil, nil
	}
	gpts := make([]geom.Point, len(pts))
	for i, p := range pts {
		gpts[i] = geom.Point{X: p.X, Y: p.Y, ID: p.ID}
	}
	ix.wmu.Lock()
	founds, lsn, err := ix.deleteLocked(gpts)
	ix.wmu.Unlock()
	if err != nil {
		return nil, err
	}
	return founds, ix.waitDurable(lsn)
}

func (ix *Index) deleteLocked(gpts []geom.Point) ([]bool, uint64, error) {
	old := ix.cur.Load()
	b, err := old.tree.BeginWrite()
	if err != nil {
		return nil, 0, err
	}
	founds := make([]bool, len(gpts))
	removed := make([]geom.Point, 0, len(gpts))
	for i, gp := range gpts {
		found, err := b.Tree().Delete(gp)
		if err != nil {
			b.Discard()
			return nil, 0, err
		}
		founds[i] = found
		if found {
			removed = append(removed, gp)
		}
	}
	if len(removed) == 0 {
		b.Discard()
		return founds, 0, nil
	}
	den := old.grid
	for _, gp := range removed {
		next, err := den.WithRemove(gp)
		if err != nil {
			// The grid does not count a point the tree held — the two
			// drifted (e.g. a historic out-of-space insert). Rather than
			// publish a grid that still counts the deleted point, rebuild it
			// from the post-delete tree so the pair leaves consistent; a
			// rebuild failure abandons the whole mutation.
			next, err = rebuildGrid(b.Tree(), old.grid, nil)
			if err != nil {
				b.Discard()
				return nil, 0, err
			}
			den = next
			break
		}
		den = next
	}
	lsn, err := ix.commitMutationLocked(b, ix.encodeFor(recDelete, removed), den, recDelete, removed, 0)
	if err != nil {
		return nil, 0, err
	}
	return founds, lsn, nil
}

// encodeFor builds the WAL payload for a mutation, nil when the index
// has no log (the bytes would be discarded unused).
func (ix *Index) encodeFor(op byte, pts []geom.Point) []byte {
	if ix.dur == nil {
		return nil
	}
	return encodeMutation(op, pts)
}

// commitMutationLocked runs the tail every mutation shares: log the
// record (WAL mode — before any page of the commit is published),
// commit the copy-on-write batch, publish the new view, notify standing
// queries, and trigger a checkpoint if the log has grown past its
// threshold. A commit or publish failure after the append is
// neutralised with an abort record so recovery does not replay a
// mutation the caller saw fail. op and changed describe the mutation
// for the subscription affect test; leaderLSN, nonzero only on a
// replication follower, stamps notifications with the leader's LSN so
// both replicas expose the same version axis. Caller holds ix.wmu.
func (ix *Index) commitMutationLocked(b *rstar.WriteBatch, payload []byte, den *grid.Density, op byte, changed []geom.Point, leaderLSN uint64) (uint64, error) {
	var lsn uint64
	if ix.dur != nil {
		var err error
		if lsn, err = ix.dur.append(payload); err != nil {
			b.Discard()
			return 0, err
		}
	}
	newTree, retired, err := b.Commit()
	if err != nil {
		if ix.dur != nil {
			ix.dur.abort(lsn)
		}
		return 0, err
	}
	if err := ix.publishLocked(newTree, den, retired, lsn); err != nil {
		if ix.dur != nil {
			ix.dur.abort(lsn)
		}
		return 0, err
	}
	if ix.dur != nil {
		// Published: the record's fate is decided and the replication
		// stream may ship it (the abort paths above settle via abort()).
		ix.dur.settled.Store(lsn)
	}
	// Standing-query hook. The Active gate keeps the zero-subscriber
	// cost at one atomic load: nothing below it (closure, timestamps,
	// registry lock) is touched before it passes.
	if ix.subs.Active() > 0 {
		nv := ix.cur.Load()
		frameLSN := lsn
		if leaderLSN != 0 {
			frameLSN = leaderLSN
		}
		ix.subs.Publish(frameLSN, nv.gen, subOpFor(op), changed, func() (any, func()) {
			// Under wmu the just-published view cannot be tombstoned, so
			// a plain increment pins it.
			nv.refs.Add(1)
			return nv, func() { nv.refs.Add(-1) }
		})
	}
	if ix.dur != nil {
		ix.dur.maybeCheckpointLocked(ix.cur.Load().tree)
	}
	return lsn, nil
}

// subOpFor maps a WAL record op onto the affect-test classification.
func subOpFor(op byte) sub.Op {
	switch op {
	case recInsert:
		return sub.OpInsert
	case recDelete:
		return sub.OpDelete
	default:
		return sub.OpReset
	}
}

// applyReplicatedLocked mirrors insertLocked/deleteLocked for a record
// replicated from a leader. Deletes tolerate absent points (exactly as
// WAL replay does) and always commit even when nothing matched: the
// follower's replica position must advance past the record either way.
// payload is the recApply-wrapped record for this follower's own log;
// leaderLSN stamps standing-query notifications so follower subscribers
// see the leader's version axis. Caller holds ix.wmu.
func (ix *Index) applyReplicatedLocked(op byte, gpts []geom.Point, payload []byte, leaderLSN uint64) (uint64, error) {
	old := ix.cur.Load()
	b, err := old.tree.BeginWrite()
	if err != nil {
		return 0, err
	}
	den := old.grid
	if op == recInsert {
		for i := range gpts {
			if err := b.Tree().Insert(gpts[i]); err != nil {
				b.Discard()
				return 0, err
			}
		}
		for i := range gpts {
			next, err := den.WithAdd(gpts[i])
			if err != nil {
				next, err = rebuildGrid(b.Tree(), old.grid, &gpts[i])
				if err != nil {
					b.Discard()
					return 0, err
				}
				den = next
				break
			}
			den = next
		}
	} else {
		removed := make([]geom.Point, 0, len(gpts))
		for _, gp := range gpts {
			found, err := b.Tree().Delete(gp)
			if err != nil {
				b.Discard()
				return 0, err
			}
			if found {
				removed = append(removed, gp)
			}
		}
		for _, gp := range removed {
			next, err := den.WithRemove(gp)
			if err != nil {
				next, err = rebuildGrid(b.Tree(), old.grid, nil)
				if err != nil {
					b.Discard()
					return 0, err
				}
				den = next
				break
			}
			den = next
		}
	}
	// gpts (not the matched subset) feeds the affect test for deletes:
	// a superset of the changed points is always conservative.
	return ix.commitMutationLocked(b, payload, den, op, gpts, leaderLSN)
}

// resetLocked discards every indexed point as one logged mutation — the
// follower's first step of a snapshot re-bootstrap. Caller holds
// ix.wmu.
func (ix *Index) resetLocked() (uint64, error) {
	old := ix.cur.Load()
	b, err := old.tree.BeginWrite()
	if err != nil {
		return 0, err
	}
	pts, err := b.Tree().All()
	if err != nil {
		b.Discard()
		return 0, err
	}
	for _, gp := range pts {
		if _, err := b.Tree().Delete(gp); err != nil {
			b.Discard()
			return 0, err
		}
	}
	den, err := rebuildGrid(b.Tree(), old.grid, nil)
	if err != nil {
		b.Discard()
		return 0, err
	}
	return ix.commitMutationLocked(b, []byte{recReset}, den, recReset, nil, 0)
}

// waitDurable blocks until the mutation at lsn is durable under the
// index's SyncPolicy. Called after wmu is released so waiting
// committers coalesce on one fsync while the next writer proceeds.
func (ix *Index) waitDurable(lsn uint64) error {
	if ix.dur == nil || lsn == 0 {
		return nil
	}
	return ix.dur.waitDurable(lsn)
}

func validateMutationPoint(p Point) error {
	if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) {
		return invalid("point", "coordinates (%g, %g) must be finite", p.X, p.Y)
	}
	return nil
}

// rebuildGrid builds a fresh density grid from t's current points. With
// extra set, the space is enlarged to cover it plus 12.5% slack per
// side; otherwise the old space is kept.
func rebuildGrid(t *rstar.Tree, oldGrid *grid.Density, extra *geom.Point) (*grid.Density, error) {
	pts, err := t.All()
	if err != nil {
		return nil, err
	}
	space := oldGrid.Space()
	if extra != nil {
		space = space.ExtendPoint(*extra)
	}
	// Cover every stored point: repairing drift means the tree may hold
	// points the old space never did.
	for _, p := range pts {
		space = space.ExtendPoint(p)
	}
	if !oldGrid.Space().ContainsRect(space) {
		// The space grew: add 12.5% slack per side so a trickle of
		// nearby outliers does not cause repeated rebuilds.
		space = space.Buffer(space.Width()/8, space.Height()/8)
	}
	return grid.New(space, oldGrid.CellSize(), pts)
}
