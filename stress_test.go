package nwcq

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// Concurrency-correctness tests: per-query Stats must be exact at any
// parallelism, and context cancellation must abort cleanly without
// corrupting index state or the cumulative I/O counter. Run with -race.

// TestBatchStatsMatchSequential is the acceptance check for per-query
// accounting: every Result of a highly parallel NWCBatch must carry a
// Stats identical (struct equality) to the one the same query reports
// when run alone — while unrelated KNWC and Nearest traffic hammers the
// index from other goroutines.
func TestBatchStatsMatchSequential(t *testing.T) {
	pts := testPoints(4000, 91)
	idx, err := Build(pts, WithBulkLoad())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(92))
	queries := make([]Query, 64)
	for i := range queries {
		queries[i] = Query{
			X: rng.Float64() * 1000, Y: rng.Float64() * 1000,
			Length: 60 + rng.Float64()*60, Width: 60 + rng.Float64()*60,
			N:      2 + rng.Intn(5),
			Scheme: []Scheme{SchemeNWC, SchemeNWCPlus, SchemeNWCStar, SchemeDefault}[i%4],
		}
	}
	// Sequential ground truth first.
	want := make([]Stats, len(queries))
	for i, q := range queries {
		res, err := idx.NWC(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Stats
	}

	// Background noise: concurrent kNWC and k-NN queries.
	stop := make(chan struct{})
	var noise sync.WaitGroup
	for g := 0; g < 4; g++ {
		noise.Add(1)
		go func(seed int64) {
			defer noise.Done()
			nrng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				x, y := nrng.Float64()*1000, nrng.Float64()*1000
				if seed%2 == 0 {
					if _, err := idx.KNWC(KQuery{
						Query: Query{X: x, Y: y, Length: 70, Width: 70, N: 3},
						K:     2, M: 1,
					}); err != nil {
						t.Error(err)
						return
					}
				} else if _, err := idx.Nearest(x, y, 5); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(g))
	}

	batch, err := idx.NWCBatch(queries, BatchOptions{Parallelism: 8})
	close(stop)
	noise.Wait()
	if err != nil {
		t.Fatal(err)
	}
	for i := range queries {
		if batch[i].Stats != want[i] {
			t.Errorf("query %d: parallel stats %+v != sequential %+v", i, batch[i].Stats, want[i])
		}
	}
}

// TestKNWCBatchStatsMatchSequential covers the kNWC path the same way.
func TestKNWCBatchStatsMatchSequential(t *testing.T) {
	idx, err := Build(testPoints(3000, 93), WithBulkLoad())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(94))
	queries := make([]KQuery, 32)
	for i := range queries {
		queries[i] = KQuery{
			Query: Query{
				X: rng.Float64() * 1000, Y: rng.Float64() * 1000,
				Length: 80, Width: 80, N: 3,
			},
			K: 3, M: 1,
		}
	}
	want := make([]Stats, len(queries))
	for i, q := range queries {
		res, err := idx.KNWCCtx(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Stats
	}
	batch, err := idx.KNWCBatch(queries, BatchOptions{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range queries {
		if batch[i].Stats != want[i] {
			t.Errorf("query %d: parallel stats %+v != sequential %+v", i, batch[i].Stats, want[i])
		}
	}
}

func TestPreCancelledContext(t *testing.T) {
	idx, err := Build(testPoints(2000, 95), WithBulkLoad())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := Query{X: 500, Y: 500, Length: 60, Width: 60, N: 4}
	if _, err := idx.NWCCtx(ctx, q); !errors.Is(err, context.Canceled) {
		t.Errorf("NWCCtx error = %v, want context.Canceled", err)
	}
	if _, err := idx.KNWCCtx(ctx, KQuery{Query: q, K: 2, M: 0}); !errors.Is(err, context.Canceled) {
		t.Errorf("KNWCCtx error = %v, want context.Canceled", err)
	}
	if _, err := idx.NWCBatchCtx(ctx, []Query{q}, BatchOptions{}); !errors.Is(err, context.Canceled) {
		t.Errorf("NWCBatchCtx error = %v, want context.Canceled", err)
	}
}

func TestDeadlineExceeded(t *testing.T) {
	idx, err := Build(testPoints(2000, 96), WithBulkLoad())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	q := Query{X: 500, Y: 500, Length: 60, Width: 60, N: 4}
	if _, err := idx.NWCCtx(ctx, q); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("NWCCtx error = %v, want context.DeadlineExceeded", err)
	}
}

// TestMidQueryCancellation cancels while queries are in flight and
// verifies (a) the batch reports the context's error and (b) the
// cumulative I/O counter is still consistent afterwards: reset it, run
// one query alone, and the index-wide total must equal that query's own
// NodeVisits — a cancelled traversal must not leak or lose counts.
func TestMidQueryCancellation(t *testing.T) {
	idx, err := Build(testPoints(5000, 97), WithBulkLoad())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(98))
	queries := make([]Query, 256)
	for i := range queries {
		queries[i] = Query{
			X: rng.Float64() * 1000, Y: rng.Float64() * 1000,
			Length: 100, Width: 100, N: 6,
			Scheme: SchemeNWC, // slowest scheme: keeps the batch in flight
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(2*time.Millisecond, cancel)
	defer timer.Stop()
	defer cancel()
	_, err = idx.NWCBatchCtx(ctx, queries, BatchOptions{Parallelism: 8})
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("batch error = %v, want nil or context.Canceled", err)
	}
	if err == nil {
		t.Log("batch finished before cancellation; counter check still runs")
	}

	idx.ResetIOStats()
	res, err := idx.NWC(queries[0])
	if err != nil {
		t.Fatal(err)
	}
	if got := idx.IOStats(); got != res.Stats.NodeVisits {
		t.Errorf("cumulative counter %d != single query's %d after cancellation", got, res.Stats.NodeVisits)
	}
}

func TestValidationErrors(t *testing.T) {
	idx, err := Build(testPoints(100, 99))
	if err != nil {
		t.Fatal(err)
	}
	nan := func(q Query) Query { q.X = nan64(); return q }
	base := Query{X: 1, Y: 2, Length: 10, Width: 10, N: 3}
	bad := []Query{
		nan(base),
		{X: 1, Y: 2, Length: 0, Width: 10, N: 3},
		{X: 1, Y: 2, Length: 10, Width: -1, N: 3},
		{X: 1, Y: 2, Length: 10, Width: 10, N: 0},
		{X: 1, Y: 2, Length: 10, Width: 10, N: 3, Measure: Measure(99)},
	}
	for i, q := range bad {
		_, err := idx.NWC(q)
		if !errors.Is(err, ErrInvalidQuery) {
			t.Errorf("bad query %d: error %v does not unwrap to ErrInvalidQuery", i, err)
		}
		var ve *ValidationError
		if !errors.As(err, &ve) || ve.Param == "" {
			t.Errorf("bad query %d: error %v is not a ValidationError", i, err)
		}
	}
	if _, err := idx.KNWC(KQuery{Query: base, K: 0}); !errors.Is(err, ErrInvalidQuery) {
		t.Errorf("K=0 error = %v", err)
	}
	if _, err := idx.KNWC(KQuery{Query: base, K: 1, M: -1}); !errors.Is(err, ErrInvalidQuery) {
		t.Errorf("M=-1 error = %v", err)
	}
	if _, err := idx.Window(10, 0, 0, 10); !errors.Is(err, ErrInvalidQuery) {
		t.Errorf("inverted window error = %v", err)
	}
	if _, err := idx.Nearest(1, 2, 0); !errors.Is(err, ErrInvalidQuery) {
		t.Errorf("k=0 nearest error = %v", err)
	}
}

func nan64() float64 {
	var zero float64
	return zero / zero
}

// TestIndexMetrics sanity-checks the aggregated observability snapshot.
func TestIndexMetrics(t *testing.T) {
	idx, err := Build(testPoints(1000, 100), WithBulkLoad())
	if err != nil {
		t.Fatal(err)
	}
	q := Query{X: 500, Y: 500, Length: 60, Width: 60, N: 3}
	for i := 0; i < 5; i++ {
		if _, err := idx.NWC(q); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := idx.KNWC(KQuery{Query: q, K: 2, M: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := idx.NWC(Query{N: 0}); err == nil {
		t.Fatal("invalid query accepted")
	}
	m := idx.Metrics()
	nwc := m.Queries["nwc"]
	if nwc.Count != 6 || nwc.Errors != 1 {
		t.Errorf("nwc count/errors = %d/%d, want 6/1", nwc.Count, nwc.Errors)
	}
	if m.Queries["knwc"].Count != 1 {
		t.Errorf("knwc count = %d", m.Queries["knwc"].Count)
	}
	if nwc.NodeVisitsP50 <= 0 {
		t.Errorf("nwc visit p50 = %g", nwc.NodeVisitsP50)
	}
	if nwc.LatencyP99Ms < nwc.LatencyP50Ms {
		t.Errorf("latency p99 %g < p50 %g", nwc.LatencyP99Ms, nwc.LatencyP50Ms)
	}
	// 5 good NWC + 1 rejected NWC + 1 kNWC, all on the default scheme.
	if m.SchemeCounts["NWC*"] != 7 {
		t.Errorf("scheme counts = %v", m.SchemeCounts)
	}
	if m.CumulativeNodeVisits == 0 {
		t.Error("cumulative node visits = 0")
	}
}
