// Package nwcq implements Nearest Window Cluster (NWC) queries over
// two-dimensional point datasets, reproducing "Nearest Window Cluster
// Queries" (Huang et al., EDBT 2016).
//
// Given a query location q, a window of length l and width w, and an
// object count n, an NWC query returns the n objects that fit together
// inside some l × w axis-aligned window such that the distance from q to
// those objects is minimal over all such windows — "the nearest area
// with n choices clustered in it". The kNWC extension returns k such
// groups that pairwise share at most m objects.
//
// # Quick start
//
//	idx, err := nwcq.Build(points)            // index a []nwcq.Point
//	res, err := idx.NWC(nwcq.Query{
//	    X: 312.7, Y: 528.5, Length: 50, Width: 50, N: 8,
//	})
//	if res.Found {
//	    fmt.Println(res.Objects, res.Dist)
//	}
//
// The index is an R*-tree (fan-out 50, one node per 4096-byte page)
// augmented with a density grid and incremental-window-query pointers;
// queries run under one of the paper's seven optimisation schemes
// (SchemeNWCStar, the default, enables all four optimisations). Every
// query reports its I/O cost as the number of index nodes visited, the
// paper's performance metric.
//
// # Contexts and concurrency
//
// An index is safe for unrestricted concurrent use: queries, batches,
// Insert and Delete may all overlap freely. Queries pin an immutable,
// atomically published view of the index at entry and run lock-free
// against it, so each query observes one consistent version of the
// dataset; mutations serialise internally and publish the next version
// with a single pointer swap. NWCCtx and KNWCCtx accept a
// context.Context that is checked at node-visit granularity: a
// cancelled or expired context aborts the traversal with the context's
// error. Every query's Stats is accumulated on a carrier private to that
// query, so per-query numbers are exact at any parallelism; Index.Metrics
// aggregates latency and I/O distributions across all queries with
// lock-free atomics.
package nwcq

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"nwcq/internal/core"
	"nwcq/internal/geom"
	"nwcq/internal/grid"
	"nwcq/internal/iwp"
	"nwcq/internal/pager"
	"nwcq/internal/rstar"
	"nwcq/internal/sub"
	"nwcq/internal/trace"
)

// Point is a data object: a location and a caller-owned identifier.
type Point struct {
	X, Y float64
	ID   uint64
}

// Rect is an axis-aligned rectangle, reported with query results.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// Measure selects how the distance between the query location and a
// group of n objects is evaluated (Section 2.1 of the paper).
type Measure int

const (
	// MaxDistance is the distance to the farthest of the n objects
	// (the default).
	MaxDistance Measure = iota
	// MinDistance is the distance to the nearest of the n objects.
	MinDistance
	// AvgDistance is the mean distance to the n objects.
	AvgDistance
	// WindowDistance is the smallest distance from the query location
	// to any qualifying window containing the n objects.
	WindowDistance
)

func (m Measure) internal() (core.Measure, error) {
	switch m {
	case MaxDistance:
		return core.MeasureMax, nil
	case MinDistance:
		return core.MeasureMin, nil
	case AvgDistance:
		return core.MeasureAvg, nil
	case WindowDistance:
		return core.MeasureWindow, nil
	default:
		return 0, fmt.Errorf("nwcq: unknown measure %d", int(m))
	}
}

// Scheme selects which of the paper's optimisation techniques run a
// query: SRR (search region reduction), DIP (distance-based pruning),
// DEP (density-based pruning) and IWP (incremental window query
// processing).
//
// Scheme is a value type designed so Query literals need no pointer
// plumbing: the zero value (SchemeDefault) means "the default scheme",
// which is SchemeNWCStar with every optimisation on. To run the plain
// unoptimised algorithm, say SchemeNWC explicitly.
type Scheme struct {
	bits uint8
}

const (
	schemeBitSRR uint8 = 1 << iota
	schemeBitDIP
	schemeBitDEP
	schemeBitIWP
	// schemeBitExplicit separates an explicitly chosen scheme from the
	// zero value, so Scheme{} can mean "default" while SchemeNWC (all
	// optimisations off, explicitly) stays expressible.
	schemeBitExplicit
)

// The paper's evaluation schemes (Table 3), plus the zero-value default.
var (
	// SchemeDefault is the zero Scheme; it resolves to SchemeNWCStar.
	SchemeDefault = Scheme{}
	SchemeNWC     = Scheme{bits: schemeBitExplicit}
	SchemeSRR     = Scheme{bits: schemeBitExplicit | schemeBitSRR}
	SchemeDIP     = Scheme{bits: schemeBitExplicit | schemeBitDIP}
	SchemeDEP     = Scheme{bits: schemeBitExplicit | schemeBitDEP}
	SchemeIWP     = Scheme{bits: schemeBitExplicit | schemeBitIWP}
	SchemeNWCPlus = Scheme{bits: schemeBitExplicit | schemeBitSRR | schemeBitDIP}
	SchemeNWCStar = Scheme{bits: schemeBitExplicit | schemeBitSRR | schemeBitDIP | schemeBitDEP | schemeBitIWP}
)

// NewScheme builds an explicit scheme from individual optimisation
// flags. NewScheme(false, false, false, false) is the plain NWC
// algorithm, not the default.
func NewScheme(srr, dip, dep, iwp bool) Scheme {
	s := Scheme{bits: schemeBitExplicit}
	if srr {
		s.bits |= schemeBitSRR
	}
	if dip {
		s.bits |= schemeBitDIP
	}
	if dep {
		s.bits |= schemeBitDEP
	}
	if iwp {
		s.bits |= schemeBitIWP
	}
	return s
}

// IsDefault reports whether s is the zero value, which resolves to
// SchemeNWCStar.
func (s Scheme) IsDefault() bool { return s.bits&schemeBitExplicit == 0 }

// Flags returns the resolved optimisation flags (the zero value
// resolves to all four on).
func (s Scheme) Flags() (srr, dip, dep, iwp bool) {
	if s.IsDefault() {
		return true, true, true, true
	}
	return s.bits&schemeBitSRR != 0, s.bits&schemeBitDIP != 0,
		s.bits&schemeBitDEP != 0, s.bits&schemeBitIWP != 0
}

func (s Scheme) internal() core.Scheme {
	srr, dip, dep, iwp := s.Flags()
	return core.Scheme{SRR: srr, DIP: dip, DEP: dep, IWP: iwp}
}

// String returns the paper's name for the resolved scheme.
func (s Scheme) String() string { return s.internal().String() }

// Query is an NWC query.
type Query struct {
	// X, Y locate the query point q.
	X, Y float64
	// Length and Width are the window extents along x and y.
	Length, Width float64
	// N is the number of objects to retrieve.
	N int
	// Scheme selects the optimisations; the zero value (SchemeDefault)
	// means SchemeNWCStar (all optimisations on).
	Scheme Scheme
	// Measure selects the distance measure; default MaxDistance.
	Measure Measure
}

// KQuery is a kNWC query: K groups sharing at most M objects pairwise.
type KQuery struct {
	Query
	K int
	M int
}

// Stats reports the work one query performed. It is computed on a
// carrier private to the query, so concurrent queries report exact,
// independent numbers.
type Stats struct {
	// NodeVisits is the number of index nodes read — the paper's I/O
	// cost metric.
	NodeVisits uint64
	// ObjectsProcessed counts data objects evaluated as window anchors.
	ObjectsProcessed int
	// ObjectsSkipped counts objects skipped by SRR or DEP.
	ObjectsSkipped int
	// NodesPruned counts index nodes pruned by DIP or DEP.
	NodesPruned int
	// WindowQueries counts window queries issued.
	WindowQueries int
	// CandidateWindows and QualifiedWindows count windows evaluated and
	// windows holding at least N objects.
	CandidateWindows int
	QualifiedWindows int
	// GridProbes counts density-grid upper-bound probes issued by DEP.
	GridProbes int
}

func statsFrom(s core.Stats) Stats {
	return Stats{
		NodeVisits:       s.NodeVisits,
		ObjectsProcessed: s.ObjectsProcessed,
		ObjectsSkipped:   s.ObjectsSkipped,
		NodesPruned:      s.NodesPruned,
		WindowQueries:    s.WindowQueries,
		CandidateWindows: s.CandidateWindows,
		QualifiedWindows: s.QualifiedWindows,
		GridProbes:       s.GridProbes,
	}
}

// Group is one answer group: N objects clustered in an l × w window.
type Group struct {
	// Objects are ordered by ascending distance to the query point.
	Objects []Point
	// Dist is the group's distance under the query's measure.
	Dist float64
	// Window is a qualifying window containing the objects.
	Window Rect
}

// Result is the answer to an NWC query.
type Result struct {
	Group
	// Found is false when no window of the requested size holds N
	// objects.
	Found bool
	// Stats describes the query's work.
	Stats Stats
}

// KResult is the answer to a kNWC query, mirroring Result's shape.
type KResult struct {
	// Groups holds up to K groups ordered by ascending distance,
	// pairwise sharing at most M objects. Fewer than K groups are
	// returned when the dataset cannot supply K groups satisfying the
	// overlap constraint.
	Groups []Group
	// Found is false when no window of the requested size holds N
	// objects (Groups is then empty).
	Found bool
	// Stats describes the query's work.
	Stats Stats
}

// Index answers NWC and kNWC queries over a point set that may evolve
// online: queries (including batches) run lock-free against atomically
// published immutable views, while Insert and Delete build the next
// view off the query path and publish it with a single pointer swap
// (see view.go and mutate.go). All methods are safe for unrestricted
// concurrent use.
type Index struct {
	// cur is the current view — the one new queries pin. Superseded
	// views wait in retireq until their readers drain.
	cur atomic.Pointer[view]

	// wmu serialises mutations and retire-queue maintenance. Queries
	// never take it.
	wmu     sync.Mutex
	retireq []*view

	options buildOptions
	obs     *queryMetrics
	// slow is the slow-query log (lock-free ring + atomic threshold);
	// created anchors the uptime reported by Metrics.
	slow    *slowLog
	created time.Time
	// pageStats reports buffer-pool counters for paged indexes (nil for
	// in-memory indexes); Metrics uses it to expose cache effectiveness.
	pageStats func() pager.Stats
	// dur binds the write-ahead log on WAL-backed paged indexes (nil for
	// in-memory indexes and WithoutWAL); see durable.go.
	dur *durability

	// vgen numbers published views (the initial view is generation 1);
	// cache is the optional result cache keyed by (query, generation).
	// See cache.go.
	vgen  atomic.Uint64
	cache *resultCache

	// subs is the standing-query registry the publish path notifies
	// (subscribe.go, internal/sub). Always non-nil; with no subscribers
	// the publish hook costs one atomic load.
	subs *sub.Registry
}

type buildOptions struct {
	maxEntries   int
	gridCellSize float64
	bulkLoad     bool
	space        geom.Rect
	spaceSet     bool
	// pageCache / nodeCache apply to paged indexes only; the Set flags
	// distinguish "explicitly zero" (disable) from "use the default".
	pageCache    int
	pageCacheSet bool
	nodeCache    int
	nodeCacheSet bool
	// slowThreshold enables the slow-query log when positive.
	slowThreshold time.Duration
	// parallelism is the default batch worker-pool width (0 means
	// GOMAXPROCS); resultCache enables the query result cache when
	// positive (entries per query kind). See cache.go.
	parallelism int
	resultCache int
	// subQueue bounds each subscriber's pending-notification queue
	// (default sub.DefaultQueueCap); viewRetention keeps that many
	// superseded views alive for as-of reads. See subscribe.go.
	subQueue      int
	viewRetention int
	// Write-ahead-log knobs; paged indexes only (see durable.go).
	walDisabled        bool
	walSync            SyncPolicy
	walSyncInterval    time.Duration
	walSegmentBytes    int64
	walCheckpointBytes int64
}

// BuildOption configures Build.
type BuildOption func(*buildOptions)

// WithMaxEntries sets the R*-tree fan-out (default 50, the paper's
// setting; each node occupies one 4096-byte page in paged form).
func WithMaxEntries(m int) BuildOption {
	return func(o *buildOptions) { o.maxEntries = m }
}

// WithGridCellSize sets the density-grid cell side length used by the
// DEP optimisation (default 25, the paper's setting).
func WithGridCellSize(s float64) BuildOption {
	return func(o *buildOptions) { o.gridCellSize = s }
}

// WithBulkLoad builds the tree by STR packing instead of one-by-one R*
// insertion — much faster for large static datasets.
func WithBulkLoad() BuildOption {
	return func(o *buildOptions) { o.bulkLoad = true }
}

// WithPageCacheSize sets the buffer-pool capacity, in 4096-byte pages,
// of a paged index (default 256). The pool holds immutable page frames
// shared zero-copy by concurrent readers; zero or negative disables
// caching so every read reaches the file. In-memory indexes ignore it.
func WithPageCacheSize(pages int) BuildOption {
	return func(o *buildOptions) {
		o.pageCache = pages
		o.pageCacheSet = true
	}
}

// WithNodeCacheSize sets the decoded-node cache capacity, in tree
// nodes, of a paged index (default rstar.DefaultNodeCacheSize). The
// cache keeps hot upper-tree nodes decoded between queries; zero or
// negative disables it. Node-visit accounting is identical either way.
// In-memory indexes ignore it.
func WithNodeCacheSize(nodes int) BuildOption {
	return func(o *buildOptions) {
		o.nodeCache = nodes
		o.nodeCacheSet = true
	}
}

// WithWALSync selects when a paged index fsyncs a mutation's WAL
// record: SyncAlways (the default) before the mutation returns,
// SyncInterval in the background (see WithWALSyncInterval), SyncNever
// only at rotation, checkpoint and Close. In-memory indexes and
// WithoutWAL ignore it.
func WithWALSync(p SyncPolicy) BuildOption {
	return func(o *buildOptions) { o.walSync = p }
}

// WithWALSyncInterval selects the SyncInterval policy with the given
// background flush cadence (default 100ms when d is not positive). A
// crash loses at most the last interval's acknowledged mutations,
// never index integrity.
func WithWALSyncInterval(d time.Duration) BuildOption {
	return func(o *buildOptions) {
		o.walSync = SyncInterval
		o.walSyncInterval = d
	}
}

// WithoutWAL disables the write-ahead log on a paged index: mutations
// become durable only at Sync and Close, and a crash in between loses
// them (the index file itself stays consistent as of the last sync).
// Any existing log directory beside the file is ignored, including
// during OpenPaged — records in it are not replayed.
func WithoutWAL() BuildOption {
	return func(o *buildOptions) { o.walDisabled = true }
}

// WithWALSegmentBytes sets the WAL segment size before rotation
// (default 1 MiB). Smaller segments recycle sooner after a checkpoint;
// larger ones rotate less often.
func WithWALSegmentBytes(n int64) BuildOption {
	return func(o *buildOptions) { o.walSegmentBytes = n }
}

// WithWALCheckpointBytes sets how much log accumulates before a
// mutation triggers a checkpoint that folds the log into the page file
// (default 1 MiB). Smaller values bound recovery time; larger ones
// amortise checkpoint fsyncs over more mutations.
func WithWALCheckpointBytes(n int64) BuildOption {
	return func(o *buildOptions) { o.walCheckpointBytes = n }
}

// WithSubscriptionQueue bounds each subscriber's pending-notification
// queue (default 64). A subscriber that falls further behind has its
// oldest pending frames coalesced away and receives a resync frame;
// the bound also caps how many superseded index views one slow
// subscriber can keep pinned.
func WithSubscriptionQueue(n int) BuildOption {
	return func(o *buildOptions) { o.subQueue = n }
}

// WithViewRetention keeps the last n superseded views alive after
// publication instead of reclaiming them as soon as readers drain,
// enabling temporal reads (NWCAsOf / KNWCAsOf, the server's as_of_lsn
// parameter) over that window. Default 0: only the current view is
// answerable.
func WithViewRetention(n int) BuildOption {
	return func(o *buildOptions) {
		if n < 0 {
			n = 0
		}
		o.viewRetention = n
	}
}

// WithSpace fixes the object space rectangle for the density grid.
// By default the space is the bounding box of the points, slightly
// padded.
func WithSpace(minX, minY, maxX, maxY float64) BuildOption {
	return func(o *buildOptions) {
		o.space = geom.NewRect(minX, minY, maxX, maxY)
		o.spaceSet = true
	}
}

// Build indexes points and prepares every substrate (R*-tree, density
// grid, IWP pointers) so any scheme can run. The point set can evolve
// afterwards through Insert and Delete, concurrently with queries.
func Build(points []Point, opts ...BuildOption) (*Index, error) {
	o := buildOptions{maxEntries: 50, gridCellSize: 25}
	for _, opt := range opts {
		opt(&o)
	}
	gpts := make([]geom.Point, len(points))
	for i, p := range points {
		if err := finiteParam("point coordinate", p.X); err != nil {
			return nil, fmt.Errorf("nwcq: point %d has non-finite coordinates", i)
		}
		if err := finiteParam("point coordinate", p.Y); err != nil {
			return nil, fmt.Errorf("nwcq: point %d has non-finite coordinates", i)
		}
		gpts[i] = geom.Point{X: p.X, Y: p.Y, ID: p.ID}
	}

	tree, err := rstar.New(rstar.NewMemStore(), rstar.Options{MaxEntries: o.maxEntries})
	if err != nil {
		return nil, err
	}
	if o.bulkLoad {
		if err := tree.BulkLoad(gpts); err != nil {
			return nil, err
		}
	} else {
		for _, p := range gpts {
			if err := tree.Insert(p); err != nil {
				return nil, err
			}
		}
	}

	space := o.space
	if !o.spaceSet {
		space = geom.EmptyRect()
		for _, p := range gpts {
			space = space.ExtendPoint(p)
		}
		if space.IsEmpty() {
			space = geom.NewRect(0, 0, 1, 1)
		}
		// Pad degenerate extents so the grid constructor accepts them.
		if space.Width() <= 0 || space.Height() <= 0 {
			space = space.Buffer(1, 1)
		}
	} else {
		for i, p := range gpts {
			if !space.ContainsPoint(p) {
				return nil, fmt.Errorf("nwcq: point %d at (%g, %g) outside the configured space", i, p.X, p.Y)
			}
		}
	}
	den, err := grid.New(space, o.gridCellSize, gpts)
	if err != nil {
		return nil, err
	}
	frozen, err := tree.Freeze()
	if err != nil {
		return nil, err
	}
	v, err := newView(frozen, den)
	if err != nil {
		return nil, err
	}
	iwpIdx, err := iwp.Build(frozen)
	if err != nil {
		return nil, err
	}
	if err := v.setIWP(iwpIdx); err != nil {
		return nil, err
	}
	frozen.ResetVisits()
	ix := &Index{
		options: o,
		obs:     newQueryMetrics(), slow: newSlowLog(o.slowThreshold), created: time.Now(),
		cache: newResultCache(o.resultCache),
		subs:  sub.NewRegistry(o.subQueue),
	}
	v.gen = ix.vgen.Add(1)
	ix.cur.Store(v)
	return ix, nil
}

// Len returns the number of indexed points (in the current view; a
// concurrent mutation is reflected once published).
func (ix *Index) Len() int { return ix.cur.Load().tree.Len() }

// TreeHeight returns the R*-tree height in levels.
func (ix *Index) TreeHeight() int { return ix.cur.Load().tree.Height() }

// StorageOverheadBytes reports the extra storage of the DEP density
// grid and the IWP pointers, using the paper's accounting (two bytes
// per grid cell, four bytes per pointer). When the current view has
// not yet built its IWP pointers (they materialise on first IWP-scheme
// query after a mutation), the previous view's figure is reported.
func (ix *Index) StorageOverheadBytes() (gridBytes, iwpBytes int) {
	v := ix.cur.Load()
	return v.grid.StorageBytes(), v.iwpBytes()
}

// NWC answers an NWC query with no cancellation; it is shorthand for
// NWCCtx with a background context.
func (ix *Index) NWC(q Query) (Result, error) {
	return ix.NWCCtx(context.Background(), q)
}

// NWCCtx answers an NWC query under ctx. The context is checked at
// node-visit granularity: once it is cancelled or past its deadline the
// traversal aborts and the context's error is returned. The query's
// Stats is computed in isolation, exact under any concurrency.
func (ix *Index) NWCCtx(ctx context.Context, q Query) (Result, error) {
	start := time.Now()
	res, hit, err := ix.nwcCached(ctx, q)
	elapsed := time.Since(start)
	visits := res.Stats.NodeVisits
	if hit {
		// A cache hit visits no nodes; the stored Stats describe the
		// execution that populated the entry.
		visits = 0
	}
	ix.obs.observe(kindNWC, q.Scheme, elapsed, visits, err)
	ix.noteSlow(kindNWC, q, 0, 0, start, elapsed, visits, err)
	return res, err
}

func (ix *Index) nwc(ctx context.Context, q Query, rec *trace.Recorder) (Result, error) {
	if err := q.Validate(); err != nil {
		return Result{}, err
	}
	v := ix.acquire()
	defer v.release()
	return ix.nwcOnView(ctx, v, q, rec)
}

// nwcOnView answers q against one pinned view — the execution core
// shared by live queries, subscription re-evaluations and temporal
// as-of reads. The caller owns the pin and has validated q.
func (ix *Index) nwcOnView(ctx context.Context, v *view, q Query, rec *trace.Recorder) (Result, error) {
	measure, err := q.Measure.internal()
	if err != nil {
		return Result{}, err
	}
	scheme := q.Scheme.internal()
	eng, err := ix.engineFor(v, scheme)
	if err != nil {
		return Result{}, err
	}
	res, st, err := eng.NWCBounded(ctx, core.Query{
		Q: geom.Point{X: q.X, Y: q.Y}, L: q.Length, W: q.Width, N: q.N,
	}, scheme, measure, rec, rstar.BoundFromContext(ctx))
	if err != nil {
		return Result{Stats: statsFrom(st)}, err
	}
	out := Result{Found: res.Found, Stats: statsFrom(st)}
	if res.Found {
		out.Group = groupFrom(res.Group)
	}
	return out, nil
}

// KNWCCtx answers a kNWC query under ctx, returning a KResult that
// mirrors NWC's single-result shape: up to K groups ordered by
// ascending distance, pairwise sharing at most M objects, plus the
// query's isolated Stats. Context semantics match NWCCtx.
func (ix *Index) KNWCCtx(ctx context.Context, q KQuery) (KResult, error) {
	start := time.Now()
	res, hit, err := ix.knwcCached(ctx, q)
	elapsed := time.Since(start)
	visits := res.Stats.NodeVisits
	if hit {
		visits = 0
	}
	ix.obs.observe(kindKNWC, q.Scheme, elapsed, visits, err)
	ix.noteSlow(kindKNWC, q.Query, q.K, q.M, start, elapsed, visits, err)
	return res, err
}

func (ix *Index) knwc(ctx context.Context, q KQuery, rec *trace.Recorder) (KResult, error) {
	if err := q.Validate(); err != nil {
		return KResult{}, err
	}
	v := ix.acquire()
	defer v.release()
	return ix.knwcOnView(ctx, v, q, rec)
}

// knwcOnView is the kNWC form of nwcOnView.
func (ix *Index) knwcOnView(ctx context.Context, v *view, q KQuery, rec *trace.Recorder) (KResult, error) {
	measure, err := q.Measure.internal()
	if err != nil {
		return KResult{}, err
	}
	scheme := q.Scheme.internal()
	eng, err := ix.engineFor(v, scheme)
	if err != nil {
		return KResult{}, err
	}
	groups, st, err := eng.KNWCTrace(ctx, core.KNWCQuery{
		Query: core.Query{Q: geom.Point{X: q.X, Y: q.Y}, L: q.Length, W: q.Width, N: q.N},
		K:     q.K, M: q.M,
	}, scheme, measure, rec)
	if err != nil {
		return KResult{Stats: statsFrom(st)}, err
	}
	out := KResult{Found: len(groups) > 0, Stats: statsFrom(st)}
	if len(groups) > 0 {
		out.Groups = make([]Group, len(groups))
		for i, g := range groups {
			out.Groups[i] = groupFrom(g)
		}
	}
	return out, nil
}

// KNWC answers a kNWC query, returning a KResult with up to K groups
// ordered by ascending distance, pairwise sharing at most M objects.
// It is KNWCCtx without a context.
func (ix *Index) KNWC(q KQuery) (KResult, error) {
	return ix.KNWCCtx(context.Background(), q)
}

// Window runs a plain window (range) query, returning the points inside
// the rectangle. Inverted rectangles (min above max on either axis) and
// non-finite bounds are rejected.
func (ix *Index) Window(minX, minY, maxX, maxY float64) ([]Point, error) {
	start := time.Now()
	pts, err := ix.window(context.Background(), minX, minY, maxX, maxY)
	ix.obs.observe(kindWindow, SchemeDefault, time.Since(start), 0, err)
	return pts, err
}

func (ix *Index) window(ctx context.Context, minX, minY, maxX, maxY float64) ([]Point, error) {
	if err := validateWindowRect(minX, minY, maxX, maxY); err != nil {
		return nil, err
	}
	v := ix.acquire()
	defer v.release()
	pts, err := v.tree.Reader(ctx, nil).SearchCollect(geom.NewRect(minX, minY, maxX, maxY))
	if err != nil {
		return nil, err
	}
	return pointsFrom(pts), nil
}

// Nearest returns the k indexed points nearest to (x, y) in ascending
// distance order.
func (ix *Index) Nearest(x, y float64, k int) ([]Point, error) {
	start := time.Now()
	pts, err := ix.nearest(context.Background(), x, y, k)
	ix.obs.observe(kindNearest, SchemeDefault, time.Since(start), 0, err)
	return pts, err
}

func (ix *Index) nearest(ctx context.Context, x, y float64, k int) ([]Point, error) {
	if err := validateNearest(x, y, k); err != nil {
		return nil, err
	}
	v := ix.acquire()
	defer v.release()
	pts, err := v.tree.Reader(ctx, nil).NearestK(geom.Point{X: x, Y: y}, k)
	if err != nil {
		return nil, err
	}
	return pointsFrom(pts), nil
}

// ResetIOStats zeroes the index-wide cumulative node-visit counter
// (per-query counts in Stats are independent and unaffected). The
// counter is shared by every view, so the reset covers queries on any
// version.
func (ix *Index) ResetIOStats() { ix.cur.Load().tree.ResetVisits() }

// IOStats returns the cumulative node visits since the index was built
// or ResetIOStats was called. The counter is atomic and exact under
// concurrent queries; per-view IWP rebuilds add their walk here too.
func (ix *Index) IOStats() uint64 { return ix.cur.Load().tree.Visits() }

func groupFrom(g core.Group) Group {
	return Group{
		Objects: pointsFrom(g.Objects),
		Dist:    g.Dist,
		Window:  Rect{MinX: g.Window.MinX, MinY: g.Window.MinY, MaxX: g.Window.MaxX, MaxY: g.Window.MaxY},
	}
}

func pointsFrom(pts []geom.Point) []Point {
	out := make([]Point, len(pts))
	for i, p := range pts {
		out[i] = Point{X: p.X, Y: p.Y, ID: p.ID}
	}
	return out
}
