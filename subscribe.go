package nwcq

import (
	"context"
	"errors"
	"fmt"
	"time"

	"nwcq/internal/sub"
)

// Continuous NWC: standing-query subscriptions over the mutation
// stream. A subscriber registers one NWC query and receives a frame
// whenever a published mutation can have changed its answer:
//
//   - every frame carries the full result at one published version,
//     stamped with that version's LSN (on a follower, the leader's LSN,
//     so both replicas expose the same axis) and the host-local
//     publication generation;
//   - frames arrive in publish order with monotone stamps, at least
//     once — a consumer may see a state twice (reconnect, resync) but
//     never out of order and never a state that did not exist;
//   - affect filtering is a box check (internal/sub): a mutation whose
//     points all fall outside the current answer's distance bound plus
//     the window extent provably cannot change the answer and produces
//     no frame;
//   - a slow consumer's pending frames coalesce in a bounded queue;
//     dropped intermediate states surface as one frame with Kind
//     SubResync, whose payload is again a full (current) answer;
//   - with zero subscribers the publish path pays a single atomic load.

// Frame kinds (Kind field of SubUpdate).
const (
	// SubInit is the first frame of a subscription: the answer at the
	// version the subscription attached at.
	SubInit = "init"
	// SubUpdateKind is a regular affected-by-a-mutation frame.
	SubUpdateKind = "update"
	// SubResync flags that intermediate frames were coalesced away; the
	// payload is still a full answer.
	SubResync = "resync"
)

// SubUpdate is one delivered frame of a standing query.
type SubUpdate struct {
	// Kind is SubInit, SubUpdateKind or SubResync.
	Kind string
	// LSN is the WAL record the frame's state reflects (the leader's
	// LSN on a follower; zero on hosts without a WAL).
	LSN uint64
	// Gen is the host-local publication generation — strictly monotone
	// even without a WAL.
	Gen uint64
	// PublishedAt is when the mutation that triggered this frame
	// published (zero on init frames); publish→notify latency is the
	// delivery time minus it.
	PublishedAt time.Time
	// Result is the standing query's full answer at this version.
	Result Result
}

// Subscription is a live standing query. Next is single-consumer;
// Close may be called from anywhere and unblocks a pending Next.
type Subscription interface {
	// Next blocks until the next frame is due and returns it. It
	// returns the context's error on cancellation and sub.ErrClosed
	// (via errors.Is(err, ErrSubscriptionClosed)) after Close or when
	// cancel closes.
	Next(ctx context.Context, cancel <-chan struct{}) (SubUpdate, error)
	// Close detaches the subscription and releases everything it pins.
	Close() error
	// ID is the host-unique subscription identifier.
	ID() uint64
}

// ErrSubscriptionClosed reports Next on a closed subscription.
var ErrSubscriptionClosed = sub.ErrClosed

// Subscriber is the standing-query surface of a backend. *Index (and
// therefore *PagedIndex) implements it; so does the sharded router.
type Subscriber interface {
	Subscribe(q Query) (Subscription, error)
}

// TemporalQuerier answers queries as of a retained past version.
// *Index implements it; usefully so only with WithViewRetention, since
// by default superseded views are reclaimed as soon as readers drain.
type TemporalQuerier interface {
	NWCAsOf(ctx context.Context, q Query, lsn uint64) (Result, error)
	KNWCAsOf(ctx context.Context, q KQuery, lsn uint64) (KResult, error)
	// RetainedLSNs bounds the currently answerable window: the oldest
	// retained view's LSN and the committed (newest) LSN.
	RetainedLSNs() (oldest, newest uint64)
}

// ErrLSNNotRetained reports an as-of read whose LSN falls outside the
// retained view window (already reclaimed, or not yet published).
var ErrLSNNotRetained = errors.New("nwcq: LSN outside the retained view window")

var (
	_ Subscriber      = (*Index)(nil)
	_ TemporalQuerier = (*Index)(nil)
)

// SubscriptionStats snapshots the subscription subsystem's counters.
type SubscriptionStats struct {
	Active     int64  `json:"active"`
	Published  uint64 `json:"published"`
	Notified   uint64 `json:"notified"`
	Coalesced  uint64 `json:"coalesced"`
	Resyncs    uint64 `json:"resyncs"`
	Delivered  uint64 `json:"delivered"`
	EvalErrors uint64 `json:"eval_errors"`
}

func subStatsFrom(st sub.Stats) SubscriptionStats {
	return SubscriptionStats{
		Active: st.Active, Published: st.Published, Notified: st.Notified,
		Coalesced: st.Coalesced, Resyncs: st.Resyncs,
		Delivered: st.Delivered, EvalErrors: st.EvalErrors,
	}
}

// SubscriptionStats returns the subscription counters.
func (ix *Index) SubscriptionStats() SubscriptionStats { return subStatsFrom(ix.subs.Stats()) }

// SubRegistry exposes the index's subscription registry. It exists for
// the sharded router (internal/shard), which attaches lightweight
// triggers to each shard's notifier; external callers cannot name the
// returned type and should use Subscribe instead.
func (ix *Index) SubRegistry() *sub.Registry { return ix.subs }

// Subscribe registers q as a standing query. The first frame (SubInit)
// is the answer at the version current at registration; afterwards a
// frame arrives for every published mutation that passes the affect
// test, in publish order.
func (ix *Index) Subscribe(q Query) (Subscription, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if _, err := q.Measure.internal(); err != nil {
		return nil, err
	}
	s := ix.subs.Subscribe(sub.Spec{X: q.X, Y: q.Y, L: q.Length, W: q.Width})
	// Evaluate at the current view. Registration preceded the pin, so a
	// mutation racing in between lands in the queue — DiscardThrough
	// below removes the ones the initial answer already reflects, which
	// keeps the frame stream monotone.
	v := ix.acquire()
	res, err := ix.nwcOnView(context.Background(), v, q, nil)
	lsn, gen := v.lsn, v.gen
	v.release()
	if err != nil {
		s.Close()
		return nil, err
	}
	s.Evaluated(res.Found, res.Dist, nil)
	s.DiscardThrough(gen)
	return &indexSub{
		ix: ix, s: s, q: q,
		init: &SubUpdate{Kind: SubInit, LSN: lsn, Gen: gen, Result: res},
	}, nil
}

// indexSub is the single-index Subscription: it re-evaluates the
// standing query on exactly the view each notification pinned, so a
// frame's Result is the answer at its stamped version.
type indexSub struct {
	ix   *Index
	s    *sub.Subscription
	q    Query
	init *SubUpdate
}

func (h *indexSub) ID() uint64 { return h.s.ID() }

func (h *indexSub) Next(ctx context.Context, cancel <-chan struct{}) (SubUpdate, error) {
	if u := h.init; u != nil {
		h.init = nil
		return *u, nil
	}
	n, err := h.s.Next(ctx, cancel)
	if err != nil {
		return SubUpdate{}, err
	}
	v, ok := n.Snap.(*view)
	if !ok {
		n.Release()
		return SubUpdate{}, errors.New("nwcq: subscription notification without a view")
	}
	res, eerr := h.ix.nwcOnView(ctx, v, h.q, nil)
	n.Release()
	h.s.Evaluated(res.Found, res.Dist, eerr)
	if eerr != nil {
		return SubUpdate{}, eerr
	}
	kind := SubUpdateKind
	if n.Resync {
		kind = SubResync
	}
	return SubUpdate{Kind: kind, LSN: n.LSN, Gen: n.Gen, PublishedAt: n.At, Result: res}, nil
}

func (h *indexSub) Close() error {
	h.s.Close()
	return nil
}

// viewAt pins the newest retained view whose LSN is at or below lsn.
// Every published LSN in the retained window has its own view, and a
// skipped LSN (an aborted record) left the state at its predecessor,
// so "newest at or below" is exactly "the state as of lsn".
func (ix *Index) viewAt(lsn uint64) (*view, error) {
	ix.wmu.Lock()
	defer ix.wmu.Unlock()
	cur := ix.cur.Load()
	if lsn >= cur.lsn {
		if lsn > cur.lsn {
			return nil, fmt.Errorf("%w: %d not yet published (committed %d)", ErrLSNNotRetained, lsn, cur.lsn)
		}
		// Pinning under wmu needs no CAS loop: tombstoning also runs
		// under wmu, and the current view is never tombstoned.
		cur.refs.Add(1)
		return cur, nil
	}
	for i := len(ix.retireq) - 1; i >= 0; i-- {
		if v := ix.retireq[i]; v.lsn <= lsn {
			v.refs.Add(1)
			return v, nil
		}
	}
	oldest, _ := ix.retainedLSNsLocked()
	return nil, fmt.Errorf("%w: %d predates the retained window (oldest %d)", ErrLSNNotRetained, lsn, oldest)
}

func (ix *Index) retainedLSNsLocked() (oldest, newest uint64) {
	newest = ix.cur.Load().lsn
	oldest = newest
	if len(ix.retireq) > 0 {
		oldest = ix.retireq[0].lsn
	}
	return oldest, newest
}

// RetainedLSNs reports the as-of answerable window: the oldest retained
// view's LSN and the committed LSN.
func (ix *Index) RetainedLSNs() (oldest, newest uint64) {
	ix.wmu.Lock()
	defer ix.wmu.Unlock()
	return ix.retainedLSNsLocked()
}

// NWCAsOf answers q against the retained view as of lsn — a temporal
// read on the same version axis subscriptions and replication use. It
// fails with ErrLSNNotRetained when that version is outside the
// retained window (size it with WithViewRetention).
func (ix *Index) NWCAsOf(ctx context.Context, q Query, lsn uint64) (Result, error) {
	start := time.Now()
	res, err := ix.nwcAsOf(ctx, q, lsn)
	ix.obs.observe(kindNWC, q.Scheme, time.Since(start), res.Stats.NodeVisits, err)
	return res, err
}

func (ix *Index) nwcAsOf(ctx context.Context, q Query, lsn uint64) (Result, error) {
	if err := q.Validate(); err != nil {
		return Result{}, err
	}
	v, err := ix.viewAt(lsn)
	if err != nil {
		return Result{}, err
	}
	defer v.release()
	return ix.nwcOnView(ctx, v, q, nil)
}

// KNWCAsOf is the kNWC form of NWCAsOf.
func (ix *Index) KNWCAsOf(ctx context.Context, q KQuery, lsn uint64) (KResult, error) {
	start := time.Now()
	res, err := ix.knwcAsOf(ctx, q, lsn)
	ix.obs.observe(kindKNWC, q.Scheme, time.Since(start), res.Stats.NodeVisits, err)
	return res, err
}

func (ix *Index) knwcAsOf(ctx context.Context, q KQuery, lsn uint64) (KResult, error) {
	if err := q.Validate(); err != nil {
		return KResult{}, err
	}
	v, err := ix.viewAt(lsn)
	if err != nil {
		return KResult{}, err
	}
	defer v.release()
	return ix.knwcOnView(ctx, v, q, nil)
}
