package nwcq

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"
)

// Standing-query correctness suite. The delivery contract under test
// (subscribe.go): every frame is the full answer at one published
// version, stamped with that version's generation (and LSN when a WAL
// exists); frames arrive in publish order with monotone stamps; any
// version whose answer differs from its predecessor's produces a frame
// (the affect test is conservative); a slow consumer loses only
// intermediate states, flagged by one resync frame. Run with -race —
// the churn test exists for it.

// drainFrames pops every already-queued frame. All publishes in these
// tests happen-before the drain, so a Next that blocks means the queue
// is empty and the short timeout only runs once, at the end.
func drainFrames(t *testing.T, s Subscription) []SubUpdate {
	t.Helper()
	var out []SubUpdate
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
		u, err := s.Next(ctx, nil)
		cancel()
		if errors.Is(err, context.DeadlineExceeded) {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out = append(out, u)
	}
}

// assertMonotoneGens checks the ordering half of the contract: strictly
// increasing generations, frame by frame.
func assertMonotoneGens(t *testing.T, frames []SubUpdate) {
	t.Helper()
	for i := 1; i < len(frames); i++ {
		if frames[i].Gen <= frames[i-1].Gen {
			t.Fatalf("frame %d gen %d not above predecessor's %d", i, frames[i].Gen, frames[i-1].Gen)
		}
	}
}

// TestSubscriptionFramesMatchOracle is the lifecycle acceptance test:
// apply a recorded mutation script to a subscribed index, then check
// every delivered frame against the brute-force oracle at the exact
// version its generation stamp names — and, conversely, that every
// version where the answer actually changed produced a frame (the
// affect test never filters a real change away).
func TestSubscriptionFramesMatchOracle(t *testing.T) {
	base, ops, versions := buildMutationScript(40, 30, 71)
	idx, err := Build(base)
	if err != nil {
		t.Fatal(err)
	}
	oracle := newMutOracle(versions)
	q := Query{X: 120, Y: 140, Length: 120, Width: 120, N: 2}

	s, err := idx.Subscribe(q)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for k, op := range ops {
		if op.insert {
			if err := idx.Insert(op.p); err != nil {
				t.Fatalf("op %d: insert: %v", k, err)
			}
		} else {
			found, err := idx.Delete(op.p)
			if err != nil || !found {
				t.Fatalf("op %d: delete: found=%v err=%v", k, found, err)
			}
		}
	}

	frames := drainFrames(t, s)
	if len(frames) == 0 || frames[0].Kind != SubInit {
		t.Fatalf("first frame is %+v, want an init frame", frames)
	}
	assertMonotoneGens(t, frames)
	initGen := frames[0].Gen
	if !nwcAgrees(frames[0].Result, oracle.NWC(0, 0, q)) {
		t.Fatalf("init frame disagrees with the oracle at version 0")
	}

	delivered := map[int]bool{}
	for i, u := range frames[1:] {
		if u.Kind != SubUpdateKind {
			t.Fatalf("frame %d kind %q; nothing coalesced, so only updates are expected", i+1, u.Kind)
		}
		if u.PublishedAt.IsZero() {
			t.Fatalf("frame %d carries no publish instant", i+1)
		}
		v := int(u.Gen - initGen)
		if v < 1 || v > len(ops) {
			t.Fatalf("frame %d gen %d names version %d outside the script", i+1, u.Gen, v)
		}
		if !nwcAgrees(u.Result, oracle.NWC(0, v, q)) {
			t.Fatalf("frame %d (version %d): found=%v dist=%g disagrees with the oracle",
				i+1, v, u.Result.Found, u.Result.Dist)
		}
		delivered[v] = true
	}

	// Completeness: a version whose answer differs from its predecessor's
	// must have produced a frame. (The converse — frames for unchanged
	// answers — is allowed: the affect test is conservative.)
	for v := 1; v <= len(ops); v++ {
		prev, cur := oracle.NWC(0, v-1, q), oracle.NWC(0, v, q)
		changed := prev.Found != cur.Found ||
			(cur.Found && math.Abs(prev.Group.Dist-cur.Group.Dist) > 1e-9)
		if changed && !delivered[v] {
			t.Fatalf("answer changed at version %d but no frame was delivered", v)
		}
	}
	if len(delivered) == 0 {
		t.Fatal("script produced no update frames; the test is vacuous")
	}

	st := idx.SubscriptionStats()
	if st.Active != 1 || st.Coalesced != 0 || st.EvalErrors != 0 {
		t.Fatalf("stats %+v: want 1 active, nothing coalesced, no eval errors", st)
	}
}

// TestSubscriptionOverflowResync pins the backpressure contract with a
// 2-deep queue: a consumer that ignores 8 affecting mutations keeps
// only the 2 newest states, the first delivery after the overflow is
// flagged resync, and the final frame is the current answer.
func TestSubscriptionOverflowResync(t *testing.T) {
	idx, err := Build(testPoints(50, 7), WithSubscriptionQueue(2))
	if err != nil {
		t.Fatal(err)
	}
	q := Query{X: 500, Y: 500, Length: 100, Width: 100, N: 3}
	s, err := idx.Subscribe(q)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const inserts = 8
	for i := 0; i < inserts; i++ {
		p := Point{X: 490 + float64(i)*2, Y: 500, ID: uint64(9000 + i)}
		if err := idx.Insert(p); err != nil {
			t.Fatal(err)
		}
	}

	frames := drainFrames(t, s)
	assertMonotoneGens(t, frames)
	if len(frames) != 3 { // init + the 2 retained states
		t.Fatalf("got %d frames, want 3 (init plus a 2-deep queue)", len(frames))
	}
	if frames[0].Kind != SubInit {
		t.Fatalf("first frame kind %q, want init", frames[0].Kind)
	}
	if frames[1].Kind != SubResync {
		t.Fatalf("first post-overflow frame kind %q, want resync", frames[1].Kind)
	}
	last := frames[len(frames)-1]
	if got := last.Gen - frames[0].Gen; got != inserts {
		t.Fatalf("final frame is version %d after init, want %d (the newest state survives coalescing)", got, inserts)
	}
	cur, err := idx.NWC(q)
	if err != nil {
		t.Fatal(err)
	}
	if last.Result.Found != cur.Found || math.Abs(last.Result.Dist-cur.Dist) > 1e-9 {
		t.Fatalf("final frame (found=%v dist=%g) is not the current answer (found=%v dist=%g)",
			last.Result.Found, last.Result.Dist, cur.Found, cur.Dist)
	}

	st := idx.SubscriptionStats()
	if want := uint64(inserts - 2); st.Coalesced != want {
		t.Fatalf("coalesced %d notifications, want %d", st.Coalesced, want)
	}
	if st.Resyncs != 1 {
		t.Fatalf("resync deliveries %d, want 1 (one flag per overflow run)", st.Resyncs)
	}
}

// TestSubscriptionChurnUnderMutation runs subscribe/consume/unsubscribe
// churn against a continuous mutator — the -race workload for the
// registry's lifecycle edges (Subscribe vs Publish vs Close). Every
// frame any subscriber sees must still be monotone, and the registry
// must drain back to zero subscriptions.
func TestSubscriptionChurnUnderMutation(t *testing.T) {
	idx, err := Build(testPoints(300, 11))
	if err != nil {
		t.Fatal(err)
	}
	q := Query{X: 500, Y: 500, Length: 150, Width: 150, N: 3}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			p := Point{X: 450 + float64(i%20)*5, Y: 500, ID: uint64(1 << 40)}
			if err := idx.Insert(p); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
			if _, err := idx.Delete(p); err != nil {
				t.Errorf("delete: %v", err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				s, err := idx.Subscribe(q)
				if err != nil {
					t.Errorf("subscribe: %v", err)
					return
				}
				var lastGen uint64
				for i := 0; i < 4; i++ {
					ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
					u, err := s.Next(ctx, nil)
					cancel()
					if err != nil {
						if errors.Is(err, context.DeadlineExceeded) {
							break
						}
						t.Errorf("next: %v", err)
						return
					}
					if u.Gen <= lastGen {
						t.Errorf("gen %d not above %d", u.Gen, lastGen)
						return
					}
					lastGen = u.Gen
				}
				s.Close()
			}
		}()
	}
	wg.Wait()
	<-done

	if st := idx.SubscriptionStats(); st.Active != 0 {
		t.Fatalf("%d subscriptions still active after churn", st.Active)
	}
	// Close must unblock a pending Next, not leave it hanging.
	s, err := idx.Subscribe(q)
	if err != nil {
		t.Fatal(err)
	}
	drainFrames(t, s) // consume the init frame so Next truly blocks
	unblocked := make(chan error, 1)
	go func() {
		_, err := s.Next(context.Background(), nil)
		unblocked <- err
	}()
	time.Sleep(10 * time.Millisecond)
	s.Close()
	select {
	case err := <-unblocked:
		if !errors.Is(err, ErrSubscriptionClosed) {
			t.Fatalf("Next after Close returned %v, want ErrSubscriptionClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close left a pending Next blocked")
	}
}

// TestSubscriptionFollowerDelivery is the replication acceptance check:
// a subscriber on a follower fed through ApplyReplicated must see the
// same LSN-ordered frame sequence — same stamps, same answers — as a
// subscriber on the leader, because follower notifications are stamped
// with the leader's LSN rather than any local counter.
func TestSubscriptionFollowerDelivery(t *testing.T) {
	base := testPoints(60, 17)
	o := buildOptions{maxEntries: 8, gridCellSize: 25, walSegmentBytes: 1 << 10}
	leader := newMemPaged().build(t, base, o)
	defer leader.Close()
	follower := newMemPaged().build(t, nil, o)
	defer follower.Close()

	// Bulk-built base never went through the leader's WAL, so the first
	// catch-up snapshots; subscriptions attach on the converged pair.
	syncFollower(t, leader, follower)
	assertConverged(t, leader, follower)

	q := Query{X: 500, Y: 500, Length: 120, Width: 120, N: 3}
	ls, err := leader.Subscribe(q)
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()
	fs, err := follower.Subscribe(q)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	// A deterministic tail: inserts marching through the query window,
	// with every third point deleted again, so the answer both improves
	// and degrades along the way.
	var livePts []Point
	for i := 0; i < 20; i++ {
		p := Point{X: 440 + float64(i)*6, Y: 480 + float64(i%5)*10, ID: uint64(5000 + i)}
		if err := leader.Insert(p); err != nil {
			t.Fatal(err)
		}
		livePts = append(livePts, p)
		if i%3 == 2 {
			victim := livePts[0]
			livePts = livePts[1:]
			if found, err := leader.Delete(victim); err != nil || !found {
				t.Fatalf("delete: found=%v err=%v", found, err)
			}
		}
	}
	syncFollower(t, leader, follower)
	assertConverged(t, leader, follower)

	lf, ff := drainFrames(t, ls), drainFrames(t, fs)
	if len(lf) != len(ff) {
		t.Fatalf("leader delivered %d frames, follower %d", len(lf), len(ff))
	}
	if len(lf) < 2 {
		t.Fatalf("only %d frames delivered; the tail should have produced updates", len(lf))
	}
	for i := range lf {
		l, f := lf[i], ff[i]
		if l.Kind != f.Kind {
			t.Fatalf("frame %d: leader kind %q, follower %q", i, l.Kind, f.Kind)
		}
		if i > 0 && (l.LSN != f.LSN) {
			t.Fatalf("frame %d: leader LSN %d, follower LSN %d — the replicas diverge on the version axis", i, l.LSN, f.LSN)
		}
		if i > 0 && l.LSN <= lf[i-1].LSN {
			t.Fatalf("frame %d LSN %d not above predecessor's %d", i, l.LSN, lf[i-1].LSN)
		}
		if l.Result.Found != f.Result.Found || math.Abs(l.Result.Dist-f.Result.Dist) > 1e-9 {
			t.Fatalf("frame %d answers diverge: leader found=%v dist=%g, follower found=%v dist=%g",
				i, l.Result.Found, l.Result.Dist, f.Result.Found, f.Result.Dist)
		}
	}
}

// TestTemporalReadsMatchSubscriptionFrames ties the as-of read path to
// the subscription version axis: with retention on, NWCAsOf at a
// frame's LSN must reproduce that frame's answer, and LSNs outside the
// retained window must fail with ErrLSNNotRetained.
func TestTemporalReadsMatchSubscriptionFrames(t *testing.T) {
	o := buildOptions{maxEntries: 8, gridCellSize: 25, walSegmentBytes: 1 << 10, viewRetention: 64}
	px := newMemPaged().build(t, testPoints(50, 23), o)
	defer px.Close()

	q := Query{X: 500, Y: 500, Length: 100, Width: 100, N: 3}
	s, err := px.Subscribe(q)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for i := 0; i < 15; i++ {
		p := Point{X: 470 + float64(i)*4, Y: 500, ID: uint64(7000 + i)}
		if err := px.Insert(p); err != nil {
			t.Fatal(err)
		}
	}

	ctx := context.Background()
	frames := drainFrames(t, s)
	updates := 0
	for _, u := range frames[1:] {
		res, err := px.NWCAsOf(ctx, q, u.LSN)
		if err != nil {
			t.Fatalf("NWCAsOf(%d): %v", u.LSN, err)
		}
		if res.Found != u.Result.Found || math.Abs(res.Dist-u.Result.Dist) > 1e-9 {
			t.Fatalf("as-of read at LSN %d (found=%v dist=%g) disagrees with the frame (found=%v dist=%g)",
				u.LSN, res.Found, res.Dist, u.Result.Found, u.Result.Dist)
		}
		if _, err := px.KNWCAsOf(ctx, KQuery{Query: q, K: 2, M: 1}, u.LSN); err != nil {
			t.Fatalf("KNWCAsOf(%d): %v", u.LSN, err)
		}
		updates++
	}
	if updates == 0 {
		t.Fatal("no update frames; the temporal cross-check is vacuous")
	}

	oldest, newest := px.RetainedLSNs()
	if oldest > newest {
		t.Fatalf("retained window [%d, %d] is inverted", oldest, newest)
	}
	if _, err := px.NWCAsOf(ctx, q, newest+5); !errors.Is(err, ErrLSNNotRetained) {
		t.Fatalf("read beyond the committed LSN returned %v, want ErrLSNNotRetained", err)
	}
	if oldest > 1 {
		if _, err := px.NWCAsOf(ctx, q, oldest-1); !errors.Is(err, ErrLSNNotRetained) {
			t.Fatalf("read below the retained window returned %v, want ErrLSNNotRetained", err)
		}
	}
}

// TestZeroSubscriberPublishBypassesRegistry pins the fast path the
// acceptance criteria demand: with no subscriptions the publish hook is
// one atomic load — it must not reach the registry, so none of the
// registry-side counters may move.
func TestZeroSubscriberPublishBypassesRegistry(t *testing.T) {
	idx, err := Build(testPoints(100, 3))
	if err != nil {
		t.Fatal(err)
	}
	mutate := func() {
		for i := 0; i < 5; i++ {
			p := Point{X: 500, Y: 500, ID: uint64(1<<40 + i)}
			if err := idx.Insert(p); err != nil {
				t.Fatal(err)
			}
			if _, err := idx.Delete(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	mutate()
	if st := idx.SubscriptionStats(); st != (SubscriptionStats{}) {
		t.Fatalf("registry counters moved with zero subscribers: %+v", st)
	}
	// After the last subscription closes, the gate must re-engage.
	s, err := idx.Subscribe(Query{X: 500, Y: 500, Length: 100, Width: 100, N: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	before := idx.SubscriptionStats()
	mutate()
	after := idx.SubscriptionStats()
	if after.Published != before.Published || after.Notified != before.Notified {
		t.Fatalf("registry engaged after the last unsubscribe: %+v -> %+v", before, after)
	}
}

// BenchmarkMutatePublish measures the insert+delete pair cost across
// the notifier's three regimes. subs=0 is the no-regression pin against
// BENCH_baseline.json's BenchmarkNWCUnderMutation rows: the gate is one
// atomic load, so the pair cost must match the pre-subscription
// mutation numbers. unaffected pays the affect test (a box miss per
// subscriber); affected additionally pins a view and pushes a frame per
// mutation onto an undrained queue (steady-state coalescing).
func BenchmarkMutatePublish(b *testing.B) {
	regimes := []struct {
		name string
		qx   float64 // standing-query center; mutations land at (100, 100)
		subs int
	}{
		{"subs=0", 0, 0},
		{"subs=1/unaffected", 900, 1},
		{"subs=1/affected", 100, 1},
	}
	for _, rg := range regimes {
		b.Run(rg.name, func(b *testing.B) {
			idx, err := Build(testPoints(10000, 5))
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < rg.subs; i++ {
				s, err := idx.Subscribe(Query{X: rg.qx, Y: rg.qx, Length: 50, Width: 50, N: 4})
				if err != nil {
					b.Fatal(err)
				}
				defer s.Close()
			}
			p := Point{X: 100, Y: 100, ID: 1 << 40}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := idx.Insert(p); err != nil {
					b.Fatal(err)
				}
				if _, err := idx.Delete(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
