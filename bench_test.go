package nwcq

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (Section 5), plus micro-benchmarks of the substrates.
//
// The per-figure benchmarks regenerate the figure's rows at a reduced
// scale (BENCH_SCALE of the paper's cardinality, windows rescaled to
// preserve objects-per-window; see internal/harness) and report the
// averaged node-visit metric alongside wall time. Run the full-scale
// versions with cmd/nwcbench -full.

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nwcq/internal/core"
	"nwcq/internal/datagen"
	"nwcq/internal/geom"
	"nwcq/internal/harness"
	"nwcq/internal/pager"
	"nwcq/internal/rstar"
)

// benchOptions scales every figure benchmark: 2% of the paper's
// cardinality and 3 query points keep the whole suite to minutes.
func benchOptions() harness.Options {
	o := harness.DefaultOptions()
	o.Scale = 0.02
	o.Queries = 3
	return o
}

// reportTable turns a harness table's numeric cells into a benchmark
// metric (the grand mean of all I/O cells) so regressions are visible.
func reportTable(b *testing.B, tables ...*harness.Table) {
	b.Helper()
	sum, cnt := 0.0, 0
	for _, t := range tables {
		for _, row := range t.Rows {
			for _, cell := range row[1:] {
				if v, ok := parseTableCell(cell); ok {
					sum += v
					cnt++
				}
			}
		}
	}
	if cnt > 0 {
		b.ReportMetric(sum/float64(cnt), "nodevisits/query")
	}
}

// parseTableCell parses a harness table cell into a float, honouring
// the K/k (×1e3) and M (×1e6) magnitude suffixes the tables emit.
// Non-numeric cells (dataset names, scheme labels, "-" placeholders)
// report ok=false and are skipped by the caller rather than silently
// treated as parse noise.
func parseTableCell(cell string) (v float64, ok bool) {
	s := strings.TrimSpace(cell)
	if s == "" || s == "-" {
		return 0, false
	}
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "M"):
		mult = 1e6
		s = strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult = 1e3
		s = s[:len(s)-1]
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, false
	}
	return f * mult, true
}

// BenchmarkTable2Datasets regenerates Table 2 (dataset generation and
// summary).
func BenchmarkTable2Datasets(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		t, err := harness.Table2(o)
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) != 3 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkFig09GridSize regenerates Figure 9: DEP's I/O cost across
// density-grid cell sizes 25–400 on the three datasets.
func BenchmarkFig09GridSize(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		t, err := harness.Fig9(o)
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, t)
	}
}

// BenchmarkFig10Distribution regenerates Figure 10: all seven schemes
// across Gaussian standard deviations 2000 → 1000.
func BenchmarkFig10Distribution(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		t, err := harness.Fig10(o)
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, t)
	}
}

// BenchmarkFig11SearchedObjects regenerates Figure 11(a–c): all schemes
// across n = 8 … 128 per dataset.
func BenchmarkFig11SearchedObjects(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		ts, err := harness.Fig11(o)
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, ts...)
	}
}

// BenchmarkFig12WindowSize regenerates Figure 12(a–c): all schemes
// across window sizes 8 … 128 per dataset.
func BenchmarkFig12WindowSize(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		ts, err := harness.Fig12(o)
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, ts...)
	}
}

// BenchmarkFig13K regenerates Figure 13: kNWC+ vs kNWC* across k on the
// CA-like and NY-like datasets.
func BenchmarkFig13K(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		t, err := harness.Fig13(o)
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, t)
	}
}

// BenchmarkFig14M regenerates Figure 14: kNWC+ vs kNWC* across m on the
// CA-like and NY-like datasets.
func BenchmarkFig14M(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		t, err := harness.Fig14(o)
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, t)
	}
}

// BenchmarkStorageOverheads regenerates the Section 5.2 storage table
// (density-grid bytes, backward/overlapping pointer counts).
func BenchmarkStorageOverheads(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		t, err := harness.StorageOverheads(o)
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) != 3 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkCostModel regenerates the Section 4 analytic-vs-measured
// comparison.
func BenchmarkCostModel(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		t, err := harness.ModelComparison(o)
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, t)
	}
}

// ---------------------------------------------------------------------
// Micro-benchmarks: per-query and per-operation costs of the substrates.
// ---------------------------------------------------------------------

func benchEnv(b *testing.B, pts []geom.Point) *harness.Env {
	b.Helper()
	cfg := harness.DefaultConfig()
	cfg.BulkLoad = true
	env, err := harness.Build("bench", pts, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return env
}

// BenchmarkNWCQuery measures one NWC query per iteration for each
// scheme on a 10k-point clustered dataset.
func BenchmarkNWCQuery(b *testing.B) {
	pts := datagen.NYLikeN(10000, 1)
	env := benchEnv(b, pts)
	queries := harness.QueryPoints(64, 5)
	for _, scheme := range []core.Scheme{core.SchemeNWC, core.SchemeNWCPlus, core.SchemeNWCStar} {
		b.Run(scheme.String(), func(b *testing.B) {
			env.Tree.ResetVisits()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				_, _, err := env.Engine.NWC(core.Query{Q: q, L: 60, W: 60, N: 8}, scheme, core.MeasureMax)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(env.Tree.Visits())/float64(b.N), "nodevisits/op")
		})
	}
}

// benchTraceIndex builds the public-API index and query list shared by
// the trace-overhead benchmarks.
func benchTraceIndex(b *testing.B) (*Index, []geom.Point) {
	b.Helper()
	raw := datagen.NYLikeN(10000, 1)
	pts := make([]Point, len(raw))
	for i, p := range raw {
		pts[i] = Point{X: p.X, Y: p.Y, ID: p.ID}
	}
	idx, err := Build(pts, WithBulkLoad())
	if err != nil {
		b.Fatal(err)
	}
	return idx, harness.QueryPoints(64, 5)
}

// BenchmarkNWCTraceOff measures the ordinary (untraced) NWC query
// through the public API. The instrumentation added for tracing is a
// nil-check branch per point, so ns/op and allocs/op here must match
// the pre-tracing numbers — compare against BenchmarkNWCTraceOn for
// the price of a recorder.
func BenchmarkNWCTraceOff(b *testing.B) {
	idx, queries := benchTraceIndex(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		if _, err := idx.NWC(Query{X: q.X, Y: q.Y, Length: 60, Width: 60, N: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNWCTraceOn measures the same query with full tracing via
// ExplainNWC: phase spans, pruning counters and the trace assembly.
func BenchmarkNWCTraceOn(b *testing.B) {
	idx, queries := benchTraceIndex(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		if _, _, err := idx.ExplainNWC(ctx, Query{X: q.X, Y: q.Y, Length: 60, Width: 60, N: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNWCUnderMutation guards the view design's zero-cost read
// path: NWC throughput with a continuous background mutator (paced
// insert/delete pairs, each publishing a new version) must match the
// static-index sub-benchmark in both ns/op and allocs/op — compare the
// two sub-benchmarks, and both against BENCH_baseline.json. The view
// pin is one atomic load plus one CAS and resolves pre-built engines,
// so queries pay nothing for mutability; TestViewPinZeroAlloc asserts
// the same property deterministically.
func BenchmarkNWCUnderMutation(b *testing.B) {
	raw := datagen.NYLikeN(10000, 1)
	pts := make([]Point, len(raw))
	for i, p := range raw {
		pts[i] = Point{X: p.X, Y: p.Y, ID: p.ID}
	}
	queries := harness.QueryPoints(64, 5)
	run := func(b *testing.B, mutate bool) {
		idx, err := Build(pts, WithBulkLoad())
		if err != nil {
			b.Fatal(err)
		}
		stop := make(chan struct{})
		var mwg sync.WaitGroup
		var pairs atomic.Int64
		if mutate {
			mwg.Add(1)
			go func() {
				defer mwg.Done()
				rng := rand.New(rand.NewSource(77))
				for i := uint64(0); ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					p := pts[rng.Intn(len(pts))]
					p.ID = 1<<40 + i
					if err := idx.Insert(p); err != nil {
						b.Error(err)
						return
					}
					if _, err := idx.Delete(p); err != nil {
						b.Error(err)
						return
					}
					pairs.Add(1)
					time.Sleep(5 * time.Millisecond)
				}
			}()
		}
		b.ReportAllocs()
		start := make(chan struct{})
		var next atomic.Int64
		var wg sync.WaitGroup
		workers := runtime.GOMAXPROCS(0)
		errs := make(chan error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for {
					i := next.Add(1) - 1
					if i >= int64(b.N) {
						return
					}
					q := queries[int(i)%len(queries)]
					if _, err := idx.NWC(Query{X: q.X, Y: q.Y, Length: 60, Width: 60, N: 8}); err != nil {
						errs <- err
						return
					}
				}
			}()
		}
		b.ResetTimer()
		close(start)
		wg.Wait()
		b.StopTimer()
		close(stop)
		mwg.Wait()
		select {
		case err := <-errs:
			b.Fatal(err)
		default:
		}
		if mutate {
			// Versions published while the clock ran: allocs/op here
			// includes the mutator's own copy-on-write work (a real
			// mutation costs memory); the READ path's share is zero.
			b.ReportMetric(float64(pairs.Load())/float64(b.N), "mutations/op")
		}
	}
	b.Run("static", func(b *testing.B) { run(b, false) })
	b.Run("mutating", func(b *testing.B) { run(b, true) })
}

// BenchmarkKNWCQuery measures one kNWC query per iteration.
func BenchmarkKNWCQuery(b *testing.B) {
	pts := datagen.NYLikeN(10000, 2)
	env := benchEnv(b, pts)
	queries := harness.QueryPoints(64, 6)
	for _, k := range []int{2, 8} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				_, _, err := env.Engine.KNWC(core.KNWCQuery{
					Query: core.Query{Q: q, L: 60, W: 60, N: 8}, K: k, M: 2,
				}, core.SchemeNWCStar, core.MeasureMax)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRStarInsert measures one-by-one R* insertion.
func BenchmarkRStarInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tree, err := rstar.New(rstar.NewMemStore(), rstar.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := geom.Point{X: rng.Float64() * 10000, Y: rng.Float64() * 10000, ID: uint64(i)}
		if err := tree.Insert(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRStarBulkLoad measures STR packing of 100k points.
func BenchmarkRStarBulkLoad(b *testing.B) {
	pts := datagen.Uniform(100000, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree, err := rstar.New(rstar.NewMemStore(), rstar.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if err := tree.BulkLoad(pts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRStarWindowQuery measures a window query returning ~25
// points from a 100k-point tree.
func BenchmarkRStarWindowQuery(b *testing.B) {
	pts := datagen.Uniform(100000, 4)
	env := benchEnv(b, pts)
	rng := rand.New(rand.NewSource(5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x, y := rng.Float64()*9800, rng.Float64()*9800
		var n int
		err := env.Tree.Search(geom.NewRect(x, y, x+158, y+158), func(geom.Point) bool {
			n++
			return true
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRStarNearestK measures a 10-NN query on a 100k-point tree.
func BenchmarkRStarNearestK(b *testing.B) {
	pts := datagen.Uniform(100000, 6)
	env := benchEnv(b, pts)
	rng := rand.New(rand.NewSource(7))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := geom.Point{X: rng.Float64() * 10000, Y: rng.Float64() * 10000}
		if _, err := env.Tree.NearestK(q, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIWPWindowQuery contrasts IWP and traditional window queries
// for the search-region-shaped rectangles the NWC algorithm issues.
func BenchmarkIWPWindowQuery(b *testing.B) {
	pts := datagen.NYLikeN(20000, 8)
	env := benchEnv(b, pts)
	q := geom.Point{X: 5000, Y: 5000}
	it := env.Tree.NewNNIterator(q)
	type anchor struct {
		p    geom.Point
		leaf rstar.NodeID
	}
	var anchors []anchor
	for len(anchors) < 256 {
		p, leaf, _, ok := it.Next()
		if !ok {
			break
		}
		anchors = append(anchors, anchor{p, leaf})
	}
	b.Run("traditional", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a := anchors[i%len(anchors)]
			sr := geom.SearchRegion(q, a.p, 60, 60)
			if _, err := env.Tree.SearchCollect(sr); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("iwp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a := anchors[i%len(anchors)]
			sr := geom.SearchRegion(q, a.p, 60, 60)
			if _, err := env.IWP.WindowCollect(a.leaf, sr); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPagerReadWrite measures raw page I/O through the pager with
// its buffer pool disabled.
func BenchmarkPagerReadWrite(b *testing.B) {
	store, err := pager.Create(pager.NewMemFile(), pager.Options{})
	if err != nil {
		b.Fatal(err)
	}
	var ids []pager.PageID
	payload := make([]byte, pager.PayloadSize())
	for i := 0; i < 1024; i++ {
		id, err := store.Allocate()
		if err != nil {
			b.Fatal(err)
		}
		ids = append(ids, id)
	}
	b.Run("write", func(b *testing.B) {
		b.SetBytes(pager.PageSize)
		for i := 0; i < b.N; i++ {
			if err := store.Write(ids[i%len(ids)], payload); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("read", func(b *testing.B) {
		b.SetBytes(pager.PageSize)
		for i := 0; i < b.N; i++ {
			if _, err := store.Read(ids[i%len(ids)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Same reads against a pool that holds the working set: hits return
	// the shared immutable frame with zero copies and zero allocations.
	cached, err := pager.Create(pager.NewMemFile(), pager.Options{CacheSize: 2048})
	if err != nil {
		b.Fatal(err)
	}
	var cids []pager.PageID
	for i := 0; i < 1024; i++ {
		id, err := cached.Allocate()
		if err != nil {
			b.Fatal(err)
		}
		if err := cached.Write(id, payload); err != nil {
			b.Fatal(err)
		}
		cids = append(cids, id)
	}
	b.Run("read-hot", func(b *testing.B) {
		b.SetBytes(pager.PageSize)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cached.Read(cids[i%len(cids)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPagedVsMemQuery compares the same NWC query on the resident
// and disk-paged forms of the index through the public API.
func BenchmarkPagedVsMemQuery(b *testing.B) {
	raw := datagen.CALikeN(10000, 9)
	pts := make([]Point, len(raw))
	for i, p := range raw {
		pts[i] = Point{X: p.X, Y: p.Y, ID: p.ID}
	}
	q := Query{X: 5000, Y: 5000, Length: 80, Width: 80, N: 8}
	b.Run("mem", func(b *testing.B) {
		idx, err := Build(pts, WithBulkLoad())
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := idx.NWC(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("paged", func(b *testing.B) {
		path := filepath.Join(b.TempDir(), "bench.nwcq")
		idx, err := BuildPaged(pts, path, WithBulkLoad())
		if err != nil {
			b.Fatal(err)
		}
		defer idx.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := idx.NWC(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPagedParallel measures NWC query throughput on a paged index
// under 1/2/4/8 goroutines, with the caches hot (buffer pool and node
// cache sized to hold the tree) and cold (both disabled, every read a
// physical page access). The hot path exercises the concurrency work in
// the pager — sharded zero-copy buffer pool, single-flight misses,
// atomic stats — whose wall-clock benefit appears as the goroutine
// count rises on multi-core hardware.
func BenchmarkPagedParallel(b *testing.B) {
	raw := datagen.CALikeN(10000, 9)
	pts := make([]Point, len(raw))
	for i, p := range raw {
		pts[i] = Point{X: p.X, Y: p.Y, ID: p.ID}
	}
	queries := harness.QueryPoints(64, 11)
	configs := []struct {
		name string
		opts []BuildOption
	}{
		{"hot", []BuildOption{WithBulkLoad(), WithPageCacheSize(4096)}},
		{"cold", []BuildOption{WithBulkLoad(), WithPageCacheSize(0), WithNodeCacheSize(0)}},
	}
	for _, cfg := range configs {
		path := filepath.Join(b.TempDir(), cfg.name+".nwcq")
		idx, err := BuildPaged(pts, path, cfg.opts...)
		if err != nil {
			b.Fatal(err)
		}
		defer idx.Close()
		// Warm the hot configuration's caches before timing.
		if cfg.name == "hot" {
			for _, q := range queries {
				if _, err := idx.NWC(Query{X: q.X, Y: q.Y, Length: 80, Width: 80, N: 8}); err != nil {
					b.Fatal(err)
				}
			}
		}
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/goroutines=%d", cfg.name, workers), func(b *testing.B) {
				b.ReportAllocs()
				idx.ResetIOStats()
				start := make(chan struct{})
				var next atomic.Int64
				var wg sync.WaitGroup
				errs := make(chan error, workers)
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						<-start
						for {
							i := next.Add(1) - 1
							if i >= int64(b.N) {
								return
							}
							q := queries[int(i)%len(queries)]
							if _, err := idx.NWC(Query{X: q.X, Y: q.Y, Length: 80, Width: 80, N: 8}); err != nil {
								errs <- err
								return
							}
						}
					}()
				}
				b.ResetTimer()
				close(start)
				wg.Wait()
				b.StopTimer()
				select {
				case err := <-errs:
					b.Fatal(err)
				default:
				}
				b.ReportMetric(float64(idx.IOStats())/float64(b.N), "nodevisits/op")
			})
		}
	}
}

// BenchmarkPagedInsertWAL measures durable insert cost on a disk-backed
// index across the three WAL sync policies and three batch sizes. The
// fsyncs/op metric counts both WAL and page-file fsyncs, so it shows
// how group commit and batching amortise the dominant durability cost:
// sync=always/batch=1 pays roughly one fsync per insert, while larger
// batches and the relaxed policies collapse toward zero.
func BenchmarkPagedInsertWAL(b *testing.B) {
	raw := datagen.Uniform(20000, 11)
	pts := make([]Point, len(raw))
	for i, p := range raw {
		pts[i] = Point{X: p.X, Y: p.Y, ID: p.ID}
	}
	policies := []struct {
		name string
		opt  BuildOption
	}{
		{"always", WithWALSync(SyncAlways)},
		{"interval", WithWALSyncInterval(10 * time.Millisecond)},
		{"never", WithWALSync(SyncNever)},
	}
	for _, pol := range policies {
		for _, batch := range []int{1, 16, 128} {
			b.Run(fmt.Sprintf("sync=%s/batch=%d", pol.name, batch), func(b *testing.B) {
				path := filepath.Join(b.TempDir(), "bench.nwcq")
				px, err := BuildPaged(pts, path, WithBulkLoad(), pol.opt)
				if err != nil {
					b.Fatal(err)
				}
				defer px.Close()
				rng := rand.New(rand.NewSource(13))
				nextID := uint64(1 << 32)
				fresh := func() Point {
					nextID++
					return Point{X: rng.Float64() * 10000, Y: rng.Float64() * 10000, ID: nextID}
				}
				syncs0 := px.dur.log.Stats().Syncs + px.PageStats().Syncs
				b.ReportAllocs()
				b.ResetTimer()
				if batch == 1 {
					for i := 0; i < b.N; i++ {
						if err := px.Insert(fresh()); err != nil {
							b.Fatal(err)
						}
					}
				} else {
					buf := make([]Point, batch)
					for i := 0; i < b.N; i += batch {
						n := batch
						if rem := b.N - i; rem < n {
							n = rem
						}
						for j := 0; j < n; j++ {
							buf[j] = fresh()
						}
						if err := px.InsertBatch(buf[:n]); err != nil {
							b.Fatal(err)
						}
					}
				}
				b.StopTimer()
				syncs1 := px.dur.log.Stats().Syncs + px.PageStats().Syncs
				b.ReportMetric(float64(syncs1-syncs0)/float64(b.N), "fsyncs/op")
			})
		}
	}
}

// BenchmarkAblation regenerates the design-choice ablation tables
// (build method, fan-out, IWP pointer spacing).
func BenchmarkAblation(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		ts, err := harness.Ablation(o)
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, ts...)
	}
}

// BenchmarkKNWCByN regenerates the extension experiment: the effect of
// the group size n on kNWC cost.
func BenchmarkKNWCByN(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		t, err := harness.FigKNWCByN(o)
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, t)
	}
}

// TestParseTableCell pins the cell grammar of reportTable: magnitude
// suffixes are honoured and non-numeric cells are skipped, not zeroed.
func TestParseTableCell(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		ok   bool
	}{
		{"42", 42, true},
		{"3.5", 3.5, true},
		{"1.2M", 1.2e6, true},
		{"7K", 7e3, true},
		{"7k", 7e3, true},
		{" 12 ", 12, true},
		{"", 0, false},
		{"-", 0, false},
		{"NWC*", 0, false},
		{"CA-like", 0, false},
	}
	for _, c := range cases {
		v, ok := parseTableCell(c.in)
		if ok != c.ok || (ok && v != c.want) {
			t.Errorf("parseTableCell(%q) = %g, %v; want %g, %v", c.in, v, ok, c.want, c.ok)
		}
	}
}
