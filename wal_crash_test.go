package nwcq

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"nwcq/internal/wal"
)

// Crash-point fault injection for the WAL + recovery protocol.
//
// The harness builds a paged index over in-memory files whose writes,
// syncs, truncates and segment create/remove operations share one step
// countdown. Arming the injector at step k makes the k-th I/O operation
// fail — tearing a write in half, the way a real crash tears one — and
// every later operation fail too (the process is dead). The test then
// reopens the surviving bytes through the normal recovery path and
// checks the oracle: the recovered point set must equal the state after
// exactly p acknowledged mutations, where acked ≤ p ≤ attempted (a
// mutation that failed mid-flight may legitimately be recovered if its
// record reached the log, and under SyncAlways no acknowledged mutation
// may ever be lost). Sweeping k from 0 upward places a crash at every
// reachable point of the append → commit → publish → checkpoint
// pipeline until one run completes uninjured.

var errCrash = errors.New("injected crash")

// crashInjector is the shared step countdown. Unarmed it is a no-op, so
// the build phase runs uninjured and only the mutation script is swept.
type crashInjector struct {
	mu        sync.Mutex
	armed     bool
	remaining int
	crashed   bool
}

func (c *crashInjector) arm(k int) {
	c.mu.Lock()
	c.armed, c.remaining, c.crashed = true, k, false
	c.mu.Unlock()
}

// step consumes one I/O step. failed means the operation must error;
// torn marks the single operation the crash lands on, whose write may
// be half-applied before the error.
func (c *crashInjector) step() (torn, failed bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.armed {
		return false, false
	}
	if c.crashed {
		return false, true
	}
	if c.remaining > 0 {
		c.remaining--
		return false, false
	}
	c.crashed = true
	return true, true
}

func (c *crashInjector) didCrash() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// crashFile injects failures into one file's mutating operations. Reads
// never fail: the interesting states are what survives on "disk", not
// read errors. With headerAtomic the offset-0 write is all-or-nothing,
// matching the protocol's documented assumption that the pager's
// header-page write is atomic; WAL segment writes tear freely, since
// the frame CRC scan is exactly the mechanism that handles them.
type crashFile struct {
	*wal.MemFile
	inj          *crashInjector
	headerAtomic bool
}

func (f *crashFile) WriteAt(p []byte, off int64) (int, error) {
	torn, failed := f.inj.step()
	if failed {
		if torn && !(f.headerAtomic && off == 0) && len(p) > 1 {
			_, _ = f.MemFile.WriteAt(p[:len(p)/2], off)
		}
		return 0, errCrash
	}
	return f.MemFile.WriteAt(p, off)
}

func (f *crashFile) Sync() error {
	if _, failed := f.inj.step(); failed {
		return errCrash
	}
	return f.MemFile.Sync()
}

func (f *crashFile) Truncate(size int64) error {
	if _, failed := f.inj.step(); failed {
		return errCrash
	}
	return f.MemFile.Truncate(size)
}

// crashFS wraps a MemFS so segment files created through it carry the
// injector, and segment create/remove count as crashable steps.
type crashFS struct {
	fs  *wal.MemFS
	inj *crashInjector
}

func (c *crashFS) Create(name string) (wal.File, error) {
	if _, failed := c.inj.step(); failed {
		return nil, errCrash
	}
	f, err := c.fs.Create(name)
	if err != nil {
		return nil, err
	}
	return &crashFile{MemFile: f.(*wal.MemFile), inj: c.inj}, nil
}

func (c *crashFS) Open(name string) (wal.File, error) {
	f, err := c.fs.Open(name)
	if err != nil {
		return nil, err
	}
	return &crashFile{MemFile: f.(*wal.MemFile), inj: c.inj}, nil
}

func (c *crashFS) Remove(name string) error {
	if _, failed := c.inj.step(); failed {
		return errCrash
	}
	return c.fs.Remove(name)
}

func (c *crashFS) List() ([]string, error) { return c.fs.List() }

// Mutation script: a deterministic mix of the four mutation entry
// points, with precomputed oracle states.
type scriptOp int

const (
	opInsert scriptOp = iota
	opInsertBatch
	opDelete
	opDeleteBatch
)

type scriptStep struct {
	op  scriptOp
	pts []Point
}

func doStep(px *PagedIndex, s scriptStep) error {
	switch s.op {
	case opInsert:
		return px.Insert(s.pts[0])
	case opInsertBatch:
		return px.InsertBatch(s.pts)
	case opDelete:
		_, err := px.Delete(s.pts[0])
		return err
	default:
		_, err := px.DeleteBatch(s.pts)
		return err
	}
}

// buildCrashScript derives steps and the oracle: states[i] is the point
// set after the first i steps all succeeded.
func buildCrashScript(rng *rand.Rand, base []Point, steps int) ([]scriptStep, []map[Point]bool) {
	alive := append([]Point(nil), base...)
	nextID := uint64(100000)
	newPoint := func() Point {
		p := Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000, ID: nextID}
		nextID++
		return p
	}
	states := make([]map[Point]bool, 0, steps+1)
	snapshot := func() map[Point]bool {
		m := make(map[Point]bool, len(alive))
		for _, p := range alive {
			m[p] = true
		}
		return m
	}
	states = append(states, snapshot())
	script := make([]scriptStep, 0, steps)
	for i := 0; i < steps; i++ {
		var s scriptStep
		switch rng.Intn(4) {
		case 0:
			s = scriptStep{op: opInsert, pts: []Point{newPoint()}}
			alive = append(alive, s.pts[0])
		case 1:
			n := 2 + rng.Intn(5)
			s = scriptStep{op: opInsertBatch}
			for j := 0; j < n; j++ {
				p := newPoint()
				s.pts = append(s.pts, p)
				alive = append(alive, p)
			}
		case 2:
			j := rng.Intn(len(alive))
			s = scriptStep{op: opDelete, pts: []Point{alive[j]}}
			alive = append(alive[:j], alive[j+1:]...)
		default:
			// A batch mixing present and absent points, so replay of the
			// logged (found-only) subset is exercised.
			s = scriptStep{op: opDeleteBatch}
			for j := 0; j < 2 && len(alive) > 0; j++ {
				k := rng.Intn(len(alive))
				s.pts = append(s.pts, alive[k])
				alive = append(alive[:k], alive[k+1:]...)
			}
			s.pts = append(s.pts, Point{X: -1, Y: -1, ID: 999999999})
		}
		script = append(script, s)
		states = append(states, snapshot())
	}
	return script, states
}

func crashBasePoints() []Point {
	pts := make([]Point, 0, 80)
	for i := 0; i < 80; i++ {
		// Deterministic scatter over [0,1000)²; coprime strides give
		// decent spread without a second RNG.
		pts = append(pts, Point{
			X:  float64((i * 137) % 1000),
			Y:  float64((i * 313) % 1000),
			ID: uint64(i + 1),
		})
	}
	return pts
}

func recoveredSet(t *testing.T, px *PagedIndex) map[Point]bool {
	t.Helper()
	gpts, err := px.cur.Load().tree.All()
	if err != nil {
		t.Fatalf("All() on recovered tree: %v", err)
	}
	m := make(map[Point]bool, len(gpts))
	for _, p := range gpts {
		m[Point{X: p.X, Y: p.Y, ID: p.ID}] = true
	}
	return m
}

func setsEqual(a, b map[Point]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for p := range a {
		if !b[p] {
			return false
		}
	}
	return true
}

// TestCrashRecoveryEveryStep is the protocol's correctness proof: it
// crashes the index at every I/O step of a mixed mutation script and
// verifies recovery lands on an acknowledged-consistent state each
// time.
func TestCrashRecoveryEveryStep(t *testing.T) {
	base := crashBasePoints()
	script, states := buildCrashScript(rand.New(rand.NewSource(7)), base, 24)
	// Small segments and an aggressive checkpoint threshold push
	// rotation, recycling and mid-script checkpoints into the swept
	// window, so crashes land inside those protocol phases too.
	o := buildOptions{
		maxEntries: 8, gridCellSize: 25,
		walSegmentBytes: 1 << 10, walCheckpointBytes: 768,
	}

	const maxSteps = 10000
	completed := false
	for k := 0; k < maxSteps && !completed; k++ {
		inj := &crashInjector{}
		pf := &crashFile{MemFile: wal.NewMemFile(), inj: inj, headerAtomic: true}
		mfs := wal.NewMemFS()
		px, err := buildPagedOn(base, pf, &crashFS{fs: mfs, inj: inj}, o)
		if err != nil {
			t.Fatalf("k=%d: build: %v", k, err)
		}
		inj.arm(k)

		acked := 0
		failed := false
		for _, s := range script {
			if err := doStep(px, s); err != nil {
				failed = true
				break
			}
			acked++
		}
		// Simulated crash: the injured index is abandoned, never closed.
		attempted := acked
		if failed {
			attempted++
		}
		if !failed {
			if inj.didCrash() {
				t.Fatalf("k=%d: crash consumed but every mutation acknowledged", k)
			}
			completed = true
		}

		// Recovery over the raw surviving bytes, injection off.
		rec, err := openPagedOn(pf.MemFile, mfs, o)
		if err != nil {
			t.Fatalf("k=%d: recovery failed (acked %d): %v", k, acked, err)
		}
		got := recoveredSet(t, rec)
		matched := -1
		for p := acked; p <= attempted; p++ {
			if setsEqual(got, states[p]) {
				matched = p
				break
			}
		}
		if matched < 0 {
			t.Fatalf("k=%d: recovered %d points match no state in [%d, %d]",
				k, len(got), acked, attempted)
		}
		// The recovered index must be fully serviceable.
		if _, err := rec.NWC(Query{X: 500, Y: 500, Length: 120, Width: 120, N: 3}); err != nil {
			t.Fatalf("k=%d: query on recovered index: %v", k, err)
		}
		if err := rec.Close(); err != nil {
			t.Fatalf("k=%d: close recovered index: %v", k, err)
		}
		// A clean close checkpoints; a second open needs no replay and
		// sees the identical state.
		re, err := openPagedOn(pf.MemFile, mfs, o)
		if err != nil {
			t.Fatalf("k=%d: reopen after clean close: %v", k, err)
		}
		if re.dur.replayed != 0 {
			t.Fatalf("k=%d: %d records replayed after a clean close", k, re.dur.replayed)
		}
		if !setsEqual(recoveredSet(t, re), states[matched]) {
			t.Fatalf("k=%d: state changed across clean close/reopen", k)
		}
		if err := re.Close(); err != nil {
			t.Fatalf("k=%d: second close: %v", k, err)
		}
	}
	if !completed {
		t.Fatalf("script never completed uninjured within %d crash points", maxSteps)
	}
}

// TestCrashRecoveryAbandonedWithoutSync covers the coarse case the
// sweep's tail also hits: every mutation acknowledged, then the process
// dies with no Close. Under SyncAlways nothing acknowledged may be
// lost.
func TestCrashRecoveryAbandonedWithoutSync(t *testing.T) {
	base := crashBasePoints()
	script, states := buildCrashScript(rand.New(rand.NewSource(11)), base, 16)
	o := buildOptions{maxEntries: 8, gridCellSize: 25}
	pf := wal.NewMemFile()
	mfs := wal.NewMemFS()
	px, err := buildPagedOn(base, pf, mfs, o)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range script {
		if err := doStep(px, s); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	// No Close: recovery must reconstruct everything from the log.
	rec, err := openPagedOn(pf, mfs, o)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer rec.Close()
	if !setsEqual(recoveredSet(t, rec), states[len(script)]) {
		t.Fatal("recovered state does not match the acknowledged final state")
	}
	if rec.dur.replayed == 0 {
		t.Fatal("expected replayed records after an unclean shutdown")
	}
	if m := rec.Metrics(); m.WAL == nil || m.WAL.RecordsReplayed == 0 {
		t.Fatal("Metrics().WAL does not report the replay")
	}
}
