package nwcq_test

import (
	"fmt"
	"math/rand"

	"nwcq"
)

// grid40 builds a deterministic 40 × 40 lattice of points, dense enough
// that every example query finds an answer.
func grid40() []nwcq.Point {
	var pts []nwcq.Point
	id := uint64(0)
	for x := 0; x < 40; x++ {
		for y := 0; y < 40; y++ {
			pts = append(pts, nwcq.Point{X: float64(x) * 25, Y: float64(y) * 25, ID: id})
			id++
		}
	}
	return pts
}

// The simplest possible NWC query: the nearest 100 × 100 window holding
// four objects.
func ExampleIndex_NWC() {
	idx, err := nwcq.Build(grid40())
	if err != nil {
		panic(err)
	}
	res, err := idx.NWC(nwcq.Query{X: 500, Y: 500, Length: 100, Width: 100, N: 4})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Found, len(res.Objects), res.Dist > 0)
	// Output: true 4 true
}

// kNWC returns several disjoint nearby clusters.
func ExampleIndex_KNWC() {
	idx, err := nwcq.Build(grid40())
	if err != nil {
		panic(err)
	}
	res, err := idx.KNWC(nwcq.KQuery{
		Query: nwcq.Query{X: 500, Y: 500, Length: 100, Width: 100, N: 4},
		K:     3,
		M:     0, // groups must be fully disjoint
	})
	if err != nil {
		panic(err)
	}
	groups := res.Groups
	fmt.Println(len(groups))
	for i := 1; i < len(groups); i++ {
		if groups[i].Dist < groups[i-1].Dist {
			fmt.Println("out of order")
		}
	}
	// Output: 3
}

// Schemes trade optimisation storage for query I/O; every scheme gives
// the same answer.
func ExampleScheme() {
	rng := rand.New(rand.NewSource(1))
	pts := make([]nwcq.Point, 5000)
	for i := range pts {
		pts[i] = nwcq.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000, ID: uint64(i)}
	}
	idx, err := nwcq.Build(pts, nwcq.WithBulkLoad())
	if err != nil {
		panic(err)
	}
	q := nwcq.Query{X: 500, Y: 500, Length: 60, Width: 60, N: 6}

	q.Scheme = nwcq.SchemeNWC
	slow, err := idx.NWC(q)
	if err != nil {
		panic(err)
	}
	q.Scheme = nwcq.SchemeNWCStar
	quick, err := idx.NWC(q)
	if err != nil {
		panic(err)
	}
	fmt.Println(slow.Dist == quick.Dist, quick.Stats.NodeVisits < slow.Stats.NodeVisits)
	// Output: true true
}
