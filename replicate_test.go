package nwcq

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"nwcq/internal/geom"
	"nwcq/internal/wal"
)

// Replication correctness against the same acked-prefix oracle as the
// crash sweep: a follower that has drained the stream must hold exactly
// the leader's acknowledged point set, answer NWC/kNWC identically, and
// survive leader restarts and its own crashes without losing anything
// it acknowledged.

// memPaged is one index's backing store: a page file plus a WAL
// directory, both in memory and both surviving an abandoned index the
// way a disk survives a killed process.
type memPaged struct {
	pf  *wal.MemFile
	mfs *wal.MemFS
}

func newMemPaged() *memPaged {
	return &memPaged{pf: wal.NewMemFile(), mfs: wal.NewMemFS()}
}

func (m *memPaged) build(t *testing.T, pts []Point, o buildOptions) *PagedIndex {
	t.Helper()
	px, err := buildPagedOn(pts, m.pf, m.mfs, o)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return px
}

func (m *memPaged) open(t *testing.T, o buildOptions) *PagedIndex {
	t.Helper()
	px, err := openPagedOn(m.pf, m.mfs, o)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return px
}

// syncFollower mirrors the internal/repl follower algorithm against the
// direct API: stream from the follower's position, bootstrapping from a
// snapshot when that history is compacted, until the follower reaches
// the leader's committed LSN. Returns whether a snapshot was needed.
func syncFollower(t *testing.T, leader, follower *PagedIndex) bool {
	t.Helper()
	bootstrapped := false
	from := follower.ReplicaLSN() + 1
	st, err := leader.StreamFrom(from)
	if errors.Is(err, ErrCompacted) {
		bootstrapped = true
		pts, snapLSN, serr := leader.ReplicationSnapshot()
		if serr != nil {
			t.Fatalf("snapshot: %v", serr)
		}
		if follower.Len() > 0 || follower.ReplicaLSN() > 0 {
			if err := follower.ResetForSnapshot(); err != nil {
				t.Fatalf("reset: %v", err)
			}
		}
		if len(pts) == 0 {
			if err := follower.ApplySnapshotChunk(nil, snapLSN); err != nil {
				t.Fatalf("empty snapshot stamp: %v", err)
			}
		}
		const chunk = 7 // small odd chunks exercise the 0-stamp path
		for off := 0; off < len(pts); off += chunk {
			end := min(off+chunk, len(pts))
			stamp := uint64(0)
			if end == len(pts) {
				stamp = snapLSN
			}
			if err := follower.ApplySnapshotChunk(pts[off:end], stamp); err != nil {
				t.Fatalf("snapshot chunk: %v", err)
			}
		}
		st, err = leader.StreamFrom(snapLSN + 1)
	}
	if err != nil {
		t.Fatalf("StreamFrom: %v", err)
	}
	defer st.Close()
	target := leader.ReplicationLSNs().Committed
	for follower.ReplicaLSN() < target {
		rec, err := st.Next()
		if err != nil {
			t.Fatalf("stream Next: %v", err)
		}
		if rec == nil {
			t.Fatalf("stream dried up at replica %d with target %d", follower.ReplicaLSN(), target)
		}
		if err := follower.ApplyReplicated(rec.LSN, rec.Data); err != nil {
			t.Fatalf("apply lsn %d: %v", rec.LSN, err)
		}
	}
	return bootstrapped
}

// assertConverged checks the acceptance oracle: identical point sets
// and identical NWC / kNWC answers at the same LSN.
func assertConverged(t *testing.T, leader, follower *PagedIndex) {
	t.Helper()
	if got, want := follower.ReplicaLSN(), leader.ReplicationLSNs().Committed; got != want {
		t.Fatalf("replica LSN %d, leader committed %d", got, want)
	}
	ls, fs := recoveredSet(t, leader), recoveredSet(t, follower)
	if !setsEqual(ls, fs) {
		t.Fatalf("point sets diverge: leader %d points, follower %d", len(ls), len(fs))
	}
	q := Query{X: 500, Y: 500, Length: 120, Width: 120, N: 3}
	lr, err1 := leader.NWC(q)
	fr, err2 := follower.NWC(q)
	if err1 != nil || err2 != nil {
		t.Fatalf("NWC: leader %v, follower %v", err1, err2)
	}
	if lr.Found != fr.Found || lr.Group.Dist != fr.Group.Dist || len(lr.Group.Objects) != len(fr.Group.Objects) {
		t.Fatalf("NWC answers diverge: leader %+v, follower %+v", lr.Group, fr.Group)
	}
	lk, err1 := leader.KNWC(KQuery{Query: q, K: 3, M: 1})
	fk, err2 := follower.KNWC(KQuery{Query: q, K: 3, M: 1})
	if err1 != nil || err2 != nil {
		t.Fatalf("KNWC: leader %v, follower %v", err1, err2)
	}
	if lk.Found != fk.Found || len(lk.Groups) != len(fk.Groups) {
		t.Fatalf("KNWC answers diverge: %d vs %d groups", len(lk.Groups), len(fk.Groups))
	}
	for i := range lk.Groups {
		if lk.Groups[i].Dist != fk.Groups[i].Dist {
			t.Fatalf("KNWC group %d dist diverges: %g vs %g", i, lk.Groups[i].Dist, fk.Groups[i].Dist)
		}
	}
}

// TestReplicationCatchUpAndLiveTail drives a follower through an
// initial catch-up and a second incremental sync, checking full
// convergence after each.
func TestReplicationCatchUpAndLiveTail(t *testing.T) {
	base := crashBasePoints()
	script, _ := buildCrashScript(rand.New(rand.NewSource(21)), base, 24)
	o := buildOptions{maxEntries: 8, gridCellSize: 25, walSegmentBytes: 1 << 10}

	leader := newMemPaged().build(t, base, o)
	defer leader.Close()
	follower := newMemPaged().build(t, nil, o)
	defer follower.Close()

	for _, s := range script[:12] {
		if err := doStep(leader, s); err != nil {
			t.Fatal(err)
		}
	}
	// The leader's bulk-built base never went through its WAL, so the
	// very first catch-up must come as a snapshot.
	if !syncFollower(t, leader, follower) {
		t.Fatal("initial catch-up skipped the snapshot bootstrap despite a bulk-built leader")
	}
	assertConverged(t, leader, follower)

	for _, s := range script[12:] {
		if err := doStep(leader, s); err != nil {
			t.Fatal(err)
		}
	}
	// The live tail is incremental: records only, no re-bootstrap.
	if syncFollower(t, leader, follower) {
		t.Fatal("live tail re-bootstrapped instead of streaming records")
	}
	assertConverged(t, leader, follower)
}

// TestReplicationSurvivesLeaderCheckpoints is the retention bug's
// integration proof: a stream opened at the log's start holds its lease
// while aggressive checkpoints run on the leader, and still delivers
// every committed record.
func TestReplicationSurvivesLeaderCheckpoints(t *testing.T) {
	base := crashBasePoints()
	script, _ := buildCrashScript(rand.New(rand.NewSource(33)), base, 30)
	// Tiny segments and an aggressive checkpoint threshold force many
	// recycle decisions while the stream is pinned at LSN 1.
	o := buildOptions{maxEntries: 8, gridCellSize: 25,
		walSegmentBytes: 1 << 10, walCheckpointBytes: 768}

	leader := newMemPaged().build(t, base, o)
	defer leader.Close()
	follower := newMemPaged().build(t, nil, o)
	defer follower.Close()

	// Bootstrap the follower to the leader's base state first, then pin
	// a stream at the frontier — the lease exists from before the first
	// scripted mutation…
	syncFollower(t, leader, follower)
	st, err := leader.StreamFrom(leader.ReplicationLSNs().Appended + 1)
	if err != nil {
		t.Fatalf("StreamFrom at frontier: %v", err)
	}
	for _, s := range script {
		if err := doStep(leader, s); err != nil {
			t.Fatal(err)
		}
	}
	if leader.dur.checkpoints.Load() == 0 {
		t.Fatal("script did not trigger a checkpoint; retention not exercised")
	}
	// …and every record must still be streamable after the checkpoints.
	target := leader.ReplicationLSNs().Committed
	for follower.ReplicaLSN() < target {
		rec, err := st.Next()
		if err != nil {
			t.Fatalf("stream Next: %v", err)
		}
		if rec == nil {
			t.Fatalf("stream dried up at replica %d with target %d", follower.ReplicaLSN(), target)
		}
		if err := follower.ApplyReplicated(rec.LSN, rec.Data); err != nil {
			t.Fatalf("apply lsn %d: %v", rec.LSN, err)
		}
	}
	st.Close()
	assertConverged(t, leader, follower)

	// With the lease released, the next checkpoint may recycle freely.
	leader.wmu.Lock()
	err = leader.dur.checkpointLocked(leader.cur.Load().tree)
	leader.wmu.Unlock()
	if err != nil {
		t.Fatalf("post-release checkpoint: %v", err)
	}
}

// TestReplicationSnapshotBootstrap recycles the history a follower
// would need, forcing the snapshot path — including wiping a stale
// follower that had already indexed unrelated points.
func TestReplicationSnapshotBootstrap(t *testing.T) {
	base := crashBasePoints()
	script, _ := buildCrashScript(rand.New(rand.NewSource(47)), base, 30)
	o := buildOptions{maxEntries: 8, gridCellSize: 25,
		walSegmentBytes: 1 << 10, walCheckpointBytes: 768}

	leader := newMemPaged().build(t, base, o)
	defer leader.Close()
	for _, s := range script {
		if err := doStep(leader, s); err != nil {
			t.Fatal(err)
		}
	}
	// A final checkpoint guarantees LSN 1 is recycled.
	leader.wmu.Lock()
	if err := leader.dur.checkpointLocked(leader.cur.Load().tree); err != nil {
		t.Fatal(err)
	}
	leader.wmu.Unlock()
	if _, err := leader.StreamFrom(1); !errors.Is(err, ErrCompacted) {
		t.Fatalf("StreamFrom(1) after full checkpoint = %v, want ErrCompacted", err)
	}

	// The follower starts with unrelated local state: the bootstrap must
	// reset it, not merge with it.
	stale := []Point{{X: 1, Y: 1, ID: 777001}, {X: 2, Y: 2, ID: 777002}}
	follower := newMemPaged().build(t, stale, o)
	defer follower.Close()
	if !syncFollower(t, leader, follower) {
		t.Fatal("expected a snapshot bootstrap")
	}
	assertConverged(t, leader, follower)
	if fs := recoveredSet(t, follower); fs[stale[0]] || fs[stale[1]] {
		t.Fatal("stale pre-bootstrap points survived the reset")
	}
}

// TestReplicationStreamAbortFiltering pins the settled-fate machine at
// the WAL level: aborted pairs vanish, bare aborts are skipped, and a
// record is held until its fate is decided.
func TestReplicationStreamAbortFiltering(t *testing.T) {
	mfs := wal.NewMemFS()
	l, err := wal.Open(mfs, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	pt := func(id uint64) []byte {
		return encodeMutation(recInsert, []geom.Point{{X: float64(id), Y: float64(id), ID: id}})
	}
	lsn1, _ := l.Append(pt(1))
	lsn2, _ := l.Append(encodeAbort(lsn1))
	lsn3, _ := l.Append(pt(3))
	if err := l.Sync(lsn3); err != nil {
		t.Fatal(err)
	}
	d := &durability{log: l}
	d.settled.Store(lsn3)

	r, err := l.NewReader(1)
	if err != nil {
		t.Fatal(err)
	}
	st := &ReplicationStream{d: d, r: r}
	defer st.Close()
	rec, err := st.Next()
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil || rec.LSN != lsn3 {
		t.Fatalf("first delivered record = %+v, want lsn %d (aborted pair %d/%d filtered)", rec, lsn3, lsn1, lsn2)
	}

	// A record with fate unknown is held even though durable.
	lsn4, _ := l.Append(pt(4))
	if err := l.Sync(lsn4); err != nil {
		t.Fatal(err)
	}
	if rec, err := st.Next(); err != nil || rec != nil {
		t.Fatalf("undecided record leaked: %+v, %v", rec, err)
	}
	// Its abort decides it: the pair disappears.
	lsn5, _ := l.Append(encodeAbort(lsn4))
	if err := l.Sync(lsn5); err != nil {
		t.Fatal(err)
	}
	d.settled.Store(lsn5)
	if rec, err := st.Next(); err != nil || rec != nil {
		t.Fatalf("aborted pair leaked: %+v, %v", rec, err)
	}
	// A published record after the pair flows normally.
	lsn6, _ := l.Append(pt(6))
	if err := l.Sync(lsn6); err != nil {
		t.Fatal(err)
	}
	d.settled.Store(lsn6)
	rec, err = st.Next()
	if err != nil || rec == nil || rec.LSN != lsn6 {
		t.Fatalf("record after aborted pair = %+v, %v, want lsn %d", rec, err, lsn6)
	}
}

// TestFollowerCrashReopenResumes kills the follower two ways — unclean
// (abandoned mid-catch-up, replica position recovered from recApply
// replay) and clean (Close checkpoints the position into the header) —
// and checks it resumes from its own position each time.
func TestFollowerCrashReopenResumes(t *testing.T) {
	base := crashBasePoints()
	script, _ := buildCrashScript(rand.New(rand.NewSource(59)), base, 24)
	o := buildOptions{maxEntries: 8, gridCellSize: 25, walSegmentBytes: 1 << 10}

	leader := newMemPaged().build(t, base, o)
	defer leader.Close()
	fm := newMemPaged()
	follower := fm.build(t, nil, o)

	for _, s := range script[:12] {
		if err := doStep(leader, s); err != nil {
			t.Fatal(err)
		}
	}
	syncFollower(t, leader, follower)
	mid := follower.ReplicaLSN()
	if mid == 0 {
		t.Fatal("no position to resume from")
	}
	// Unclean death: abandon without Close, reopen from surviving bytes.
	follower = fm.open(t, o)
	if got := follower.ReplicaLSN(); got != mid {
		t.Fatalf("replica LSN after unclean reopen = %d, want %d", got, mid)
	}
	assertConverged(t, leader, follower)

	for _, s := range script[12:] {
		if err := doStep(leader, s); err != nil {
			t.Fatal(err)
		}
	}
	syncFollower(t, leader, follower)
	final := follower.ReplicaLSN()

	// Clean death: Close checkpoints, reopen must replay nothing and
	// still know its position (now from the page-file header alone).
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}
	follower = fm.open(t, o)
	defer follower.Close()
	if follower.dur.replayed != 0 {
		t.Fatalf("%d records replayed after clean close", follower.dur.replayed)
	}
	if got := follower.ReplicaLSN(); got != final {
		t.Fatalf("replica LSN after clean reopen = %d, want %d", got, final)
	}
	assertConverged(t, leader, follower)
}

// TestLeaderRestartMidStream kills and reopens the leader between two
// catch-up rounds: the follower's acked prefix must still be exactly a
// prefix of the restarted leader's history, and convergence must
// complete.
func TestLeaderRestartMidStream(t *testing.T) {
	base := crashBasePoints()
	script, _ := buildCrashScript(rand.New(rand.NewSource(71)), base, 24)
	o := buildOptions{maxEntries: 8, gridCellSize: 25, walSegmentBytes: 1 << 10}

	lm := newMemPaged()
	leader := lm.build(t, base, o)
	follower := newMemPaged().build(t, nil, o)
	defer follower.Close()

	for _, s := range script[:12] {
		if err := doStep(leader, s); err != nil {
			t.Fatal(err)
		}
	}
	syncFollower(t, leader, follower)
	assertConverged(t, leader, follower)

	// Kill the leader: abandoned, never closed. Every record the
	// follower applied was durable (SyncAlways), so the restarted leader
	// must still cover the follower's position.
	leader = lm.open(t, o)
	defer leader.Close()
	if lc := leader.ReplicationLSNs().Committed; lc < follower.ReplicaLSN() {
		t.Fatalf("restarted leader committed %d below follower position %d: follower applied non-durable records",
			lc, follower.ReplicaLSN())
	}
	syncFollower(t, leader, follower)
	assertConverged(t, leader, follower)

	for _, s := range script[12:] {
		if err := doStep(leader, s); err != nil {
			t.Fatal(err)
		}
	}
	syncFollower(t, leader, follower)
	assertConverged(t, leader, follower)
}

// TestApplyReplicatedDeduplicates feeds the same record twice (stream
// reconnect overlap) and expects one application.
func TestApplyReplicatedDeduplicates(t *testing.T) {
	base := crashBasePoints()
	o := buildOptions{maxEntries: 8, gridCellSize: 25}
	leader := newMemPaged().build(t, base, o)
	defer leader.Close()
	follower := newMemPaged().build(t, nil, o)
	defer follower.Close()

	if err := leader.Insert(Point{X: 10, Y: 10, ID: 500000}); err != nil {
		t.Fatal(err)
	}
	st, err := leader.StreamFrom(leader.ReplicationLSNs().Committed)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rec, err := st.Next()
	if err != nil || rec == nil {
		t.Fatalf("Next: %+v, %v", rec, err)
	}
	for i := 0; i < 2; i++ {
		if err := follower.ApplyReplicated(rec.LSN, rec.Data); err != nil {
			t.Fatalf("apply #%d: %v", i+1, err)
		}
	}
	if n := follower.Len(); n != 1 {
		t.Fatalf("%d points after duplicate delivery, want 1", n)
	}
}

// TestCloseSurfacesWALPoisonAndReleasesPages is the Close-ordering
// fix: with the append path poisoned, Close must surface the sticky WAL
// error exactly once, skip the (impossible) final checkpoint, and still
// hand the deferred retired pages back so the in-process tree is not
// leaked.
func TestCloseSurfacesWALPoisonAndReleasesPages(t *testing.T) {
	base := crashBasePoints()
	o := buildOptions{maxEntries: 8, gridCellSize: 25, walSegmentBytes: 1 << 10}
	inj := &crashInjector{}
	pf := wal.NewMemFile()
	mfs := wal.NewMemFS()
	px, err := buildPagedOn(base, pf, &crashFS{fs: mfs, inj: inj}, o)
	if err != nil {
		t.Fatal(err)
	}
	// Mutations park retired pages in pending until the next durable
	// checkpoint.
	for i := 0; i < 8; i++ {
		if err := px.Insert(Point{X: float64(i), Y: float64(i), ID: uint64(900000 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	if len(px.dur.pending) == 0 {
		t.Fatal("no pending retired pages; the release path is not exercised")
	}
	// Poison the WAL: the next append (and everything after) fails.
	inj.arm(0)
	if err := px.Insert(Point{X: 1, Y: 1, ID: 999999}); err == nil {
		t.Fatal("mutation succeeded with a dead WAL")
	}
	if err := px.Insert(Point{X: 2, Y: 2, ID: 999998}); err == nil || !strings.Contains(err.Error(), "read-only") {
		t.Fatalf("poisoned index accepted a mutation: %v", err)
	}
	err = px.Close()
	if err == nil || !strings.Contains(err.Error(), "write-ahead log failed") {
		t.Fatalf("Close = %v, want the sticky WAL failure", err)
	}
	if n := strings.Count(err.Error(), "injected crash"); n != 1 {
		t.Fatalf("sticky error surfaced %d times in %q, want once", n, err)
	}
	if len(px.dur.pending) != 0 {
		t.Fatalf("%d retired pages still pending after Close", len(px.dur.pending))
	}
	if err := px.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
	// The poisoned tail stays frozen: recovery from the surviving bytes
	// still works and holds only acknowledged state.
	rec, err := openPagedOn(pf, mfs, o)
	if err != nil {
		t.Fatalf("recovery after poisoned close: %v", err)
	}
	defer rec.Close()
	got := recoveredSet(t, rec)
	if got[Point{X: 1, Y: 1, ID: 999999}] {
		t.Fatal("unacknowledged mutation recovered")
	}
}
