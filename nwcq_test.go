package nwcq

import (
	"math"
	"math/rand"
	"testing"
)

func testPoints(n int, seed int64) []Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000, ID: uint64(i)}
	}
	return pts
}

func TestBuildAndBasicQuery(t *testing.T) {
	pts := testPoints(2000, 1)
	for _, opts := range [][]BuildOption{
		nil,
		{WithBulkLoad()},
		{WithMaxEntries(16), WithGridCellSize(50)},
		{WithSpace(0, 0, 1000, 1000)},
	} {
		idx, err := Build(pts, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if idx.Len() != len(pts) {
			t.Fatalf("Len = %d", idx.Len())
		}
		res, err := idx.NWC(Query{X: 500, Y: 500, Length: 100, Width: 100, N: 5})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found {
			t.Fatal("no result on dense uniform data")
		}
		if len(res.Objects) != 5 {
			t.Fatalf("%d objects", len(res.Objects))
		}
		if res.Stats.NodeVisits == 0 {
			t.Error("no I/O recorded")
		}
		// Objects fit the window, distances ascend.
		for i, o := range res.Objects {
			if o.X < res.Window.MinX || o.X > res.Window.MaxX ||
				o.Y < res.Window.MinY || o.Y > res.Window.MaxY {
				t.Fatalf("object %v outside window %+v", o, res.Window)
			}
			if i > 0 {
				di := math.Hypot(res.Objects[i].X-500, res.Objects[i].Y-500)
				dp := math.Hypot(res.Objects[i-1].X-500, res.Objects[i-1].Y-500)
				if di < dp-1e-9 {
					t.Fatal("objects not in ascending distance order")
				}
			}
		}
		if res.Window.MaxX-res.Window.MinX > 100+1e-9 || res.Window.MaxY-res.Window.MinY > 100+1e-9 {
			t.Fatalf("window %+v exceeds 100x100", res.Window)
		}
	}
}

func TestSchemesAgreeThroughPublicAPI(t *testing.T) {
	pts := testPoints(3000, 2)
	idx, err := Build(pts, WithBulkLoad())
	if err != nil {
		t.Fatal(err)
	}
	var baseline float64
	for i, s := range []Scheme{SchemeNWC, SchemeSRR, SchemeDIP, SchemeDEP, SchemeIWP, SchemeNWCPlus, SchemeNWCStar} {
		res, err := idx.NWC(Query{X: 300, Y: 700, Length: 60, Width: 60, N: 6, Scheme: s})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found {
			t.Fatalf("scheme %v found nothing", s)
		}
		if i == 0 {
			baseline = res.Dist
		} else if math.Abs(res.Dist-baseline) > 1e-9 {
			t.Fatalf("scheme %v dist %g, baseline %g", s, res.Dist, baseline)
		}
	}
}

func TestMeasuresThroughPublicAPI(t *testing.T) {
	pts := testPoints(1000, 3)
	idx, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	dists := map[Measure]float64{}
	for _, m := range []Measure{MaxDistance, MinDistance, AvgDistance, WindowDistance} {
		res, err := idx.NWC(Query{X: 500, Y: 500, Length: 120, Width: 120, N: 4, Measure: m})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found {
			t.Fatalf("measure %v found nothing", m)
		}
		dists[m] = res.Dist
	}
	if !(dists[MinDistance] <= dists[AvgDistance] && dists[AvgDistance] <= dists[MaxDistance]) {
		t.Errorf("measure ordering violated: %v", dists)
	}
	if dists[WindowDistance] > dists[MinDistance] {
		t.Errorf("window distance %g above min distance %g", dists[WindowDistance], dists[MinDistance])
	}
	if _, err := idx.NWC(Query{X: 0, Y: 0, Length: 1, Width: 1, N: 1, Measure: Measure(9)}); err == nil {
		t.Error("bad measure accepted")
	}
}

func TestKNWCThroughPublicAPI(t *testing.T) {
	pts := testPoints(3000, 4)
	idx, err := Build(pts, WithBulkLoad())
	if err != nil {
		t.Fatal(err)
	}
	res, err := idx.KNWC(KQuery{
		Query: Query{X: 500, Y: 500, Length: 80, Width: 80, N: 4},
		K:     3, M: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	groups, st := res.Groups, res.Stats
	if len(groups) != 3 {
		t.Fatalf("%d groups", len(groups))
	}
	if st.NodeVisits == 0 {
		t.Error("no I/O recorded")
	}
	for i := 1; i < len(groups); i++ {
		if groups[i].Dist < groups[i-1].Dist {
			t.Error("groups out of order")
		}
	}
	// Pairwise overlap within m.
	for i := range groups {
		for j := i + 1; j < len(groups); j++ {
			shared := 0
			for _, a := range groups[i].Objects {
				for _, b := range groups[j].Objects {
					if a == b {
						shared++
					}
				}
			}
			if shared > 1 {
				t.Errorf("groups %d,%d share %d objects", i, j, shared)
			}
		}
	}
}

func TestWindowAndNearest(t *testing.T) {
	pts := testPoints(500, 5)
	idx, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	in, err := idx.Window(100, 100, 300, 300)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, p := range pts {
		if p.X >= 100 && p.X <= 300 && p.Y >= 100 && p.Y <= 300 {
			want++
		}
	}
	if len(in) != want {
		t.Errorf("window returned %d, want %d", len(in), want)
	}
	nn, err := idx.Nearest(500, 500, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(nn) != 10 {
		t.Fatalf("nearest returned %d", len(nn))
	}
	for i := 1; i < len(nn); i++ {
		if math.Hypot(nn[i].X-500, nn[i].Y-500) < math.Hypot(nn[i-1].X-500, nn[i-1].Y-500) {
			t.Fatal("nearest not sorted")
		}
	}
	if _, err := idx.Nearest(0, 0, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := idx.Window(math.NaN(), 0, 1, 1); err == nil {
		t.Error("NaN window accepted")
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build([]Point{{X: math.NaN(), Y: 0}}); err == nil {
		t.Error("NaN point accepted")
	}
	if _, err := Build([]Point{{X: math.Inf(1), Y: 0}}); err == nil {
		t.Error("Inf point accepted")
	}
	if _, err := Build([]Point{{X: 5, Y: 5}}, WithSpace(0, 0, 1, 1)); err == nil {
		t.Error("point outside configured space accepted")
	}
	// Empty and single-point datasets build fine.
	idx, err := Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := idx.NWC(Query{X: 0, Y: 0, Length: 1, Width: 1, N: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Error("found a group in an empty index")
	}
	one, err := Build([]Point{{X: 3, Y: 4, ID: 9}})
	if err != nil {
		t.Fatal(err)
	}
	res, err = one.NWC(Query{X: 0, Y: 0, Length: 2, Width: 2, N: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Objects[0].ID != 9 {
		t.Errorf("single-point result %+v", res)
	}
	if res.Dist != 5 {
		t.Errorf("dist %g, want 5", res.Dist)
	}
}

func TestIOStatsAccumulate(t *testing.T) {
	pts := testPoints(2000, 6)
	idx, err := Build(pts, WithBulkLoad())
	if err != nil {
		t.Fatal(err)
	}
	if idx.IOStats() != 0 {
		t.Error("fresh index has nonzero I/O")
	}
	res, err := idx.NWC(Query{X: 500, Y: 500, Length: 50, Width: 50, N: 4})
	if err != nil {
		t.Fatal(err)
	}
	if idx.IOStats() != res.Stats.NodeVisits {
		t.Errorf("cumulative %d != per-query %d", idx.IOStats(), res.Stats.NodeVisits)
	}
	idx.ResetIOStats()
	if idx.IOStats() != 0 {
		t.Error("reset did not zero the counter")
	}
	g, i := idx.StorageOverheadBytes()
	if g <= 0 || i <= 0 {
		t.Errorf("storage overheads %d/%d", g, i)
	}
	if idx.TreeHeight() < 1 {
		t.Error("tree height")
	}
}

func TestSchemeStringPublic(t *testing.T) {
	if SchemeNWCStar.String() != "NWC*" || SchemeNWC.String() != "NWC" {
		t.Error("scheme names drifted from the paper")
	}
}
