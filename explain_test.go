package nwcq

import (
	"context"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestExplainNWCVisitSum is the tracing acceptance check: for every
// scheme the per-phase node-visit counts must sum exactly to the
// query's Stats.NodeVisits — the recorder and the Stats carrier ride
// the same Reader, so any drift means an instrumentation gap.
func TestExplainNWCVisitSum(t *testing.T) {
	ix := buildTestIndex(t, 3000)
	q := Query{X: 500, Y: 500, Length: 80, Width: 80, N: 5}
	for _, sch := range []Scheme{
		SchemeNWC, SchemeSRR, SchemeDIP, SchemeDEP, SchemeIWP, SchemeNWCPlus, SchemeNWCStar,
	} {
		q.Scheme = sch
		plain, err := ix.NWC(q)
		if err != nil {
			t.Fatal(err)
		}
		res, tr, err := ix.ExplainNWC(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if tr == nil {
			t.Fatalf("%s: nil trace", sch)
		}
		if res.Found != plain.Found || res.Group.Dist != plain.Group.Dist {
			t.Errorf("%s: traced result disagrees with plain query", sch)
		}
		if res.Stats.NodeVisits != plain.Stats.NodeVisits {
			t.Errorf("%s: traced visits %d != plain visits %d — tracing changed the traversal",
				sch, res.Stats.NodeVisits, plain.Stats.NodeVisits)
		}
		var sum uint64
		for _, p := range tr.Phases {
			sum += p.NodeVisits
		}
		if sum != res.Stats.NodeVisits {
			t.Errorf("%s: phase visit sum %d != Stats.NodeVisits %d", sch, sum, res.Stats.NodeVisits)
		}
		if tr.NodeVisits != res.Stats.NodeVisits {
			t.Errorf("%s: trace visits %d != stats %d", sch, tr.NodeVisits, res.Stats.NodeVisits)
		}
		if tr.Kind != "nwc" || tr.Scheme != sch.String() || tr.Measure != "max" {
			t.Errorf("%s: trace header %s/%s/%s", sch, tr.Kind, tr.Scheme, tr.Measure)
		}
		if tr.Duration <= 0 || len(tr.Phases) == 0 {
			t.Errorf("%s: empty trace (duration %v, %d phases)", sch, tr.Duration, len(tr.Phases))
		}
		// Counters copied from Stats must match it exactly.
		c := tr.Counters
		if c.WindowQueries != int64(res.Stats.WindowQueries) ||
			c.CandidateWindows != int64(res.Stats.CandidateWindows) ||
			c.QualifiedWindows != int64(res.Stats.QualifiedWindows) ||
			c.GridProbes != int64(res.Stats.GridProbes) {
			t.Errorf("%s: counters diverge from Stats: %+v vs %+v", sch, c, res.Stats)
		}
		// Rule-split counters must re-aggregate to the Stats totals.
		if c.DIPPrunedNodes+c.DEPPrunedNodes != int64(res.Stats.NodesPruned) {
			t.Errorf("%s: DIP %d + DEP %d != NodesPruned %d",
				sch, c.DIPPrunedNodes, c.DEPPrunedNodes, res.Stats.NodesPruned)
		}
		if c.SRRSkips+c.DEPSkippedObjects != int64(res.Stats.ObjectsSkipped) {
			t.Errorf("%s: SRR skips %d + DEP skips %d != ObjectsSkipped %d",
				sch, c.SRRSkips, c.DEPSkippedObjects, res.Stats.ObjectsSkipped)
		}
		if res.Found && c.GroupsEmitted == 0 {
			t.Errorf("%s: found a group but GroupsEmitted = 0", sch)
		}
		if tr.HeapHighWater == 0 {
			t.Errorf("%s: heap high-water = 0", sch)
		}
	}
}

func TestExplainKNWC(t *testing.T) {
	ix := buildTestIndex(t, 3000)
	kq := KQuery{Query: Query{X: 500, Y: 500, Length: 80, Width: 80, N: 4}, K: 3, M: 1}
	res, tr, err := ix.ExplainKNWC(context.Background(), kq)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || len(res.Groups) != 3 {
		t.Fatalf("found=%v groups=%d", res.Found, len(res.Groups))
	}
	var sum uint64
	for _, p := range tr.Phases {
		sum += p.NodeVisits
	}
	if sum != res.Stats.NodeVisits {
		t.Errorf("phase visit sum %d != Stats.NodeVisits %d", sum, res.Stats.NodeVisits)
	}
	if tr.Kind != "knwc" {
		t.Errorf("kind = %q", tr.Kind)
	}
	c := tr.Counters
	if c.DedupOffered == 0 || c.DedupAccepted == 0 {
		t.Errorf("dedup counters empty: %+v", c)
	}
	if c.DedupAccepted > c.DedupOffered {
		t.Errorf("accepted %d > offered %d", c.DedupAccepted, c.DedupOffered)
	}
	if c.GroupsEmitted != c.DedupOffered {
		t.Errorf("groups emitted %d != dedup offered %d", c.GroupsEmitted, c.DedupOffered)
	}
	var sawDedup bool
	for _, p := range tr.Phases {
		if p.Phase == "knwc-dedup" {
			sawDedup = true
			if p.Entered == 0 {
				t.Error("knwc-dedup phase never entered")
			}
		}
	}
	if !sawDedup {
		t.Error("no knwc-dedup phase in trace")
	}
}

func TestQueryTraceRenderAndJSON(t *testing.T) {
	ix := buildTestIndex(t, 2000)
	_, tr, err := ix.ExplainNWC(context.Background(), Query{X: 500, Y: 500, Length: 80, Width: 80, N: 5})
	if err != nil {
		t.Fatal(err)
	}
	out := tr.Render()
	for _, want := range []string{"nwc scheme=NWC*", "descent", "window-enum", "verify", "└─"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	raw, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var back QueryTrace
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.NodeVisits != tr.NodeVisits || len(back.Phases) != len(tr.Phases) {
		t.Error("trace did not round-trip through JSON")
	}
}

// TestSlowQueryLogConcurrent is the slow-log acceptance check: with an
// over-threshold query mixed into concurrent load, an entry must appear
// — and the whole path must stay -race clean.
func TestSlowQueryLogConcurrent(t *testing.T) {
	ix := buildTestIndex(t, 3000)
	if got := ix.SlowQueryThreshold(); got != 0 {
		t.Fatalf("default threshold = %v, want 0 (off)", got)
	}
	// Threshold off: nothing may be recorded.
	if _, err := ix.NWC(Query{X: 500, Y: 500, Length: 50, Width: 50, N: 3}); err != nil {
		t.Fatal(err)
	}
	if n := len(ix.SlowQueries()); n != 0 {
		t.Fatalf("%d entries recorded while disabled", n)
	}

	// 1ns threshold makes every query slow; hammer it from several
	// goroutines while another reads the log.
	ix.SetSlowQueryThreshold(time.Nanosecond)
	var wg sync.WaitGroup
	const workers, iters = 4, 20
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				q := Query{X: float64((g*211 + i*31) % 1000), Y: 500, Length: 60, Width: 60, N: 3}
				if i%3 == 0 {
					if _, err := ix.KNWCCtx(context.Background(), KQuery{Query: q, K: 2, M: 1}); err != nil {
						t.Error(err)
						return
					}
				} else if _, err := ix.NWC(q); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			ix.SlowQueries()
		}
	}()
	wg.Wait()

	entries := ix.SlowQueries()
	if len(entries) == 0 {
		t.Fatal("no slow-query entries under 1ns threshold")
	}
	if len(entries) > slowLogSize {
		t.Fatalf("%d entries exceed ring size %d", len(entries), slowLogSize)
	}
	for i := 1; i < len(entries); i++ {
		if entries[i].StartedAt.After(entries[i-1].StartedAt) {
			t.Fatal("entries not newest-first")
		}
	}
	kinds := map[string]bool{}
	for _, e := range entries {
		kinds[e.Kind] = true
		if e.Duration <= 0 {
			t.Fatalf("entry without duration: %+v", e)
		}
		if e.Scheme != "NWC*" || e.N != 3 {
			t.Fatalf("entry lost query parameters: %+v", e)
		}
	}
	if !kinds["nwc"] || !kinds["knwc"] {
		t.Errorf("kinds recorded: %v", kinds)
	}

	// Turning the log back off stops recording but keeps history.
	ix.SetSlowQueryThreshold(0)
	before := len(ix.SlowQueries())
	if _, err := ix.NWC(Query{X: 1, Y: 1, Length: 50, Width: 50, N: 3}); err != nil {
		t.Fatal(err)
	}
	if got := len(ix.SlowQueries()); got != before {
		t.Errorf("entry recorded after disabling: %d -> %d", before, got)
	}
}

// TestSlowLogSkipsInvalidQueries pins a bug found driving the HTTP
// surface: a validation-rejected query (which may carry NaN/Inf
// parameters) must not enter the slow log — one NaN coordinate would
// make the whole log unencodable as JSON.
func TestSlowLogSkipsInvalidQueries(t *testing.T) {
	ix := buildTestIndex(t, 500)
	ix.SetSlowQueryThreshold(time.Nanosecond)
	if _, err := ix.NWC(Query{X: math.NaN(), Y: 1, Length: 10, Width: 10, N: 3}); err == nil {
		t.Fatal("NaN query accepted")
	}
	if _, err := ix.NWC(Query{X: 1, Y: 1, Length: -5, Width: 10, N: 3}); err == nil {
		t.Fatal("negative-extent query accepted")
	}
	if n := len(ix.SlowQueries()); n != 0 {
		t.Fatalf("%d invalid queries entered the slow log", n)
	}
	if _, err := ix.NWC(Query{X: 500, Y: 500, Length: 100, Width: 100, N: 3}); err != nil {
		t.Fatal(err)
	}
	entries := ix.SlowQueries()
	if len(entries) != 1 {
		t.Fatalf("%d entries, want 1", len(entries))
	}
	if _, err := json.Marshal(entries); err != nil {
		t.Fatalf("slow log not JSON-encodable: %v", err)
	}
}

func TestSlowQueryThresholdOption(t *testing.T) {
	ix, err := Build(testPoints(500, 1), WithBulkLoad(), WithSlowQueryThreshold(time.Nanosecond))
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.SlowQueryThreshold(); got != time.Nanosecond {
		t.Fatalf("threshold = %v", got)
	}
	if _, err := ix.NWC(Query{X: 500, Y: 500, Length: 100, Width: 100, N: 3}); err != nil {
		t.Fatal(err)
	}
	entries := ix.SlowQueries()
	if len(entries) != 1 {
		t.Fatalf("%d entries, want 1", len(entries))
	}
	if entries[0].Kind != "nwc" || entries[0].NodeVisits == 0 {
		t.Errorf("entry = %+v", entries[0])
	}
}
